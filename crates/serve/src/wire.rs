//! The ldp-serve wire protocol: versioned, checksummed, length-prefixed
//! binary frames over a byte stream.
//!
//! Every frame shares one envelope, the TCP sibling of the `ldp-store`
//! snapshot codec (same discipline: explicit little-endian layout, FNV-1a
//! checksum, strict decode with a distinct typed error per defect class):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "LDPW"
//! 4       2     version (u16 LE) — currently 1
//! 6       2     kind tag (u16 LE) — one Message variant
//! 8       8     payload length (u64 LE)
//! 16      len   payload (message-specific, see docs/WIRE_PROTOCOL.md)
//! 16+len  8     FNV-1a 64 checksum (u64 LE) over bytes [0, 16+len)
//! ```
//!
//! Decoding is strict: truncation, a stray magic, version skew, an
//! oversized length prefix, a checksum mismatch, an unknown kind tag, and
//! malformed payload contents each produce a *distinct* [`WireError`] —
//! never a panic, never a silent partial read. The kind tag is validated
//! only **after** the checksum, so a bit flip in the tag reads as the
//! corruption it is rather than as a mysterious unknown message.
//!
//! The full byte-level specification with worked hex dumps lives in
//! `docs/WIRE_PROTOCOL.md`; this module is its executable form.

use std::fmt;
use std::io::{Read, Write};

use ldp_linalg::stablehash::fnv1a64;
use ldp_workloads::{Query, QueryTerm};

/// Frame magic: `LDPW` ("LDP wire"), distinct from the snapshot codec's
/// `LDPS` so a stored record can never be replayed as a live frame.
pub const MAGIC: [u8; 4] = *b"LDPW";

/// Current protocol version. Bump on any layout change; decoders reject
/// other versions with [`WireError::UnsupportedVersion`].
pub const VERSION: u16 = 1;

/// Ceiling on the payload-length prefix (64 MiB). A corrupt or hostile
/// length can therefore never induce a giant allocation or a read that
/// hangs draining gigabytes.
pub const MAX_PAYLOAD: u64 = 1 << 26;

/// Envelope bytes before the payload: magic + version + kind + length.
const HEADER: usize = 4 + 2 + 2 + 8;

/// Trailing checksum bytes.
const CHECKSUM: usize = 8;

/// Longest accepted deployment-name or attribute-name string.
const MAX_NAME: usize = 1 << 12;

/// Longest accepted error-message string.
const MAX_TEXT: usize = 1 << 16;

/// Most conditions accepted in one wire query.
const MAX_TERMS: usize = 1 << 10;

/// Most heavy-hitter candidates accepted in one request.
const MAX_CANDIDATES: usize = 1 << 20;

/// Most deployments accepted in one `InfoOk` frame.
const MAX_DEPLOYMENTS: usize = 1 << 12;

/// A typed wire-protocol failure. Every decode defect class has its own
/// variant so servers and clients can react precisely (and tests can
/// assert the sweep: truncate anywhere, flip any bit, forge any field —
/// the error names what happened).
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// The stream ended inside a frame (header, payload, or checksum).
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        remaining: usize,
    },
    /// The first four bytes were not `LDPW`.
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The frame declares a protocol version this build does not speak.
    UnsupportedVersion {
        /// Version in the frame.
        found: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Declared payload length.
        length: u64,
        /// The enforced ceiling.
        limit: u64,
    },
    /// The checksum did not match: the frame was corrupted in flight.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        stored: u64,
        /// Checksum recomputed over the received bytes.
        computed: u64,
    },
    /// The checksum held but the kind tag names no known message.
    UnknownKind {
        /// The unrecognized tag.
        found: u16,
    },
    /// A structurally valid frame of the wrong kind arrived (e.g. a
    /// query response to a submit request).
    UnexpectedKind {
        /// What the caller was waiting for.
        expected: &'static str,
        /// What actually arrived.
        found: &'static str,
    },
    /// The envelope held but the payload contents did not parse.
    Malformed(String),
    /// The query uses a predicate condition, which cannot cross the wire
    /// (closures have no byte representation); resolve it into
    /// [`Query::values`] first.
    UnencodableQuery,
    /// The server answered with an error frame.
    Remote {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// A socket-level failure outside the frame layer.
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(f, "truncated frame: needed {needed} bytes, had {remaining}")
            }
            WireError::BadMagic { found } => write!(f, "bad frame magic {found:02x?}"),
            WireError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported protocol version {found} (supported: {supported})"
                )
            }
            WireError::Oversized { length, limit } => {
                write!(f, "payload length {length} exceeds limit {limit}")
            }
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            WireError::UnknownKind { found } => write!(f, "unknown frame kind tag {found}"),
            WireError::UnexpectedKind { expected, found } => {
                write!(f, "expected a {expected} frame, got {found}")
            }
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::UnencodableQuery => {
                write!(f, "predicate queries cannot be encoded for the wire")
            }
            WireError::Remote { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            WireError::Io(what) => write!(f, "i/o error: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

/// Machine-readable failure classes carried by error frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request named a deployment this server does not host.
    UnknownDeployment,
    /// A submitted batch failed admission (report out of range); nothing
    /// was counted.
    BadBatch,
    /// The query did not resolve against the deployment's schema (or is
    /// not scalar).
    BadQuery,
    /// The request is recognized but not supported by this server.
    Unsupported,
    /// The client broke the request/response protocol (e.g. sent a
    /// response kind, or a corrupt frame).
    Protocol,
    /// The server failed internally; the connection state is suspect.
    Internal,
    /// A code minted by a newer peer; preserved verbatim.
    Other(u16),
}

impl ErrorCode {
    /// The numeric tag carried on the wire.
    pub fn as_tag(self) -> u16 {
        match self {
            ErrorCode::UnknownDeployment => 1,
            ErrorCode::BadBatch => 2,
            ErrorCode::BadQuery => 3,
            ErrorCode::Unsupported => 4,
            ErrorCode::Protocol => 5,
            ErrorCode::Internal => 6,
            ErrorCode::Other(tag) => tag,
        }
    }

    /// The code for a numeric tag (never fails: unknown tags are
    /// preserved as [`ErrorCode::Other`]).
    pub fn from_tag(tag: u16) -> Self {
        match tag {
            1 => ErrorCode::UnknownDeployment,
            2 => ErrorCode::BadBatch,
            3 => ErrorCode::BadQuery,
            4 => ErrorCode::Unsupported,
            5 => ErrorCode::Protocol,
            6 => ErrorCode::Internal,
            other => ErrorCode::Other(other),
        }
    }
}

/// One hosted deployment's identity and live counters, as reported in an
/// [`Message::InfoOk`] frame.
#[derive(Clone, Debug, PartialEq)]
pub struct DeploymentInfo {
    /// The name requests address it by.
    pub name: String,
    /// Domain size `n` (user types).
    pub domain_size: u64,
    /// Mechanism output arity `m` (valid reports are `0..m`).
    pub num_outputs: u64,
    /// Queries in the deployed workload.
    pub num_queries: u64,
    /// Privacy budget ε every report satisfies.
    pub epsilon: f64,
    /// The deployment-binding fingerprint — the same value the snapshot
    /// codec binds checkpoints to, so a client can verify it reconnected
    /// to the deployment it previously submitted to.
    pub binding: u64,
    /// Checkpoints written so far.
    pub epoch: u64,
    /// Batches merged into the central stream so far.
    pub batches: u64,
    /// Reports merged into the central stream so far.
    pub reports: u64,
}

/// A query in wire form: the encodable subset of [`Query`] (marginal,
/// range, value-set, and total conditions; predicates cannot cross the
/// wire).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WireQuery {
    terms: Vec<(String, WireTerm)>,
}

/// One encoded per-attribute condition.
#[derive(Clone, Debug, PartialEq)]
enum WireTerm {
    /// One query per value of the attribute (tag 1).
    Marginal,
    /// Restrict to `[lo, hi)`; `hi = None` means the attribute's full
    /// upper end (tag 2).
    Range { lo: u64, hi: Option<u64> },
    /// Restrict to an explicit value set (tag 3).
    Values(Vec<u64>),
    /// Open-domain point condition: count users whose attribute equals
    /// this key (tag 4). Routed to the sparse oracle path server-side.
    Key(String),
}

/// Widens a host-side index for the wire. Lossless on every supported
/// platform (`usize` is at most 64 bits); the *layout* of the value is
/// still decided by `put_u64`, this is width conversion only.
fn wide(v: usize) -> u64 {
    // ldp-lint: allow(codec-layout-discipline) -- width conversion, not
    // byte layout; the little-endian write happens in put_u64.
    v as u64
}

impl WireQuery {
    /// Encodes a [`Query`] for the wire.
    ///
    /// # Errors
    /// [`WireError::UnencodableQuery`] if the query contains a predicate
    /// condition (closures have no byte representation).
    pub fn from_query(query: &Query) -> Result<Self, WireError> {
        let mut terms = Vec::new();
        for (name, term) in query.terms() {
            let wire = match term {
                QueryTerm::Marginal => WireTerm::Marginal,
                QueryTerm::Range { lo, hi } => WireTerm::Range {
                    lo: wide(lo),
                    hi: hi.map(wide),
                },
                QueryTerm::Values(values) => {
                    WireTerm::Values(values.iter().copied().map(wide).collect())
                }
                QueryTerm::Predicate => return Err(WireError::UnencodableQuery),
                QueryTerm::Key(key) => WireTerm::Key(key.to_string()),
            };
            terms.push((name.to_string(), wire));
        }
        Ok(Self { terms })
    }

    /// Rebuilds the [`Query`] on the receiving side. Values that
    /// overflow the platform's `usize` are clamped to `usize::MAX`, which
    /// the schema layer then rejects as out of range with a typed error.
    pub fn to_query(&self) -> Query {
        let clamp = |v: u64| usize::try_from(v).unwrap_or(usize::MAX);
        let mut query = Query::total();
        for (name, term) in &self.terms {
            query = match term {
                WireTerm::Marginal => query.and_marginal(name.clone()),
                WireTerm::Range { lo, hi: Some(hi) } => {
                    query.and_range(name.clone(), clamp(*lo)..clamp(*hi))
                }
                WireTerm::Range { lo, hi: None } => query.and_range(name.clone(), clamp(*lo)..),
                WireTerm::Values(values) => {
                    query.and_values(name.clone(), values.iter().map(|&v| clamp(v)))
                }
                WireTerm::Key(key) => query.and_key(name.clone(), key.clone()),
            };
        }
        query
    }
}

/// One protocol message; its variant is the frame's kind tag. Clients
/// send request kinds and wait for the matching `…Ok` (or
/// [`Message::Error`]) response; the server never initiates.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Server → client: the request failed (tag 1).
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Client → server: describe every hosted deployment (tag 2).
    Info,
    /// Server → client: the hosted deployments (tag 3).
    InfoOk {
        /// One entry per hosted deployment, in hosting order.
        deployments: Vec<DeploymentInfo>,
    },
    /// Client → server: ingest one batch of reports atomically (tag 4).
    Submit {
        /// Target deployment name.
        deployment: String,
        /// Mechanism outputs, each `< num_outputs`.
        reports: Vec<u64>,
    },
    /// Server → client: the batch was counted (tag 5).
    SubmitOk {
        /// Reports accepted (the whole batch; admission is atomic).
        accepted: u64,
        /// Reports sitting in this connection's shard awaiting the next
        /// merge barrier (checkpoint, query, or info).
        pending: u64,
    },
    /// Client → server: answer one ad-hoc scalar query (tag 6).
    Query {
        /// Target deployment name.
        deployment: String,
        /// The encoded query.
        query: WireQuery,
    },
    /// Server → client: the answer with its analytic error bar (tag 7).
    QueryOk {
        /// Estimated count `w·x̂`.
        value: f64,
        /// Worst-case variance at the observed report count.
        variance: f64,
        /// `sqrt(variance)` — the ± error bar.
        stddev: f64,
        /// Reports contributing to the estimate.
        reports: u64,
    },
    /// Client → server: evaluate the full deployed workload (tag 8).
    Answers {
        /// Target deployment name.
        deployment: String,
    },
    /// Server → client: the workload answers `W·x̂` (tag 9).
    AnswersOk {
        /// One answer per workload query, in workload order, exact bits.
        answers: Vec<f64>,
        /// Reports contributing to the estimate.
        reports: u64,
    },
    /// Client → server: merge every connection shard and persist a
    /// snapshot (tag 10).
    Checkpoint {
        /// Target deployment name.
        deployment: String,
    },
    /// Server → client: the checkpoint is durable (tag 11).
    CheckpointOk {
        /// Checkpoint generation after this write.
        epoch: u64,
        /// Snapshot record size in bytes.
        bytes: u64,
    },
    /// Client → server: stop accepting, drain connections, persist final
    /// snapshots, exit (tag 12).
    Shutdown,
    /// Server → client: shutdown is underway (tag 13).
    ShutdownOk,
    /// Client → server: ingest one batch of open-domain oracle reports
    /// atomically into a sparse deployment (tag 14).
    SubmitSparse {
        /// Target deployment name.
        deployment: String,
        /// Raw oracle reports, each valid for the deployment's oracle.
        reports: Vec<u64>,
    },
    /// Client → server: variance-aware top-k heavy hitters over an
    /// explicit candidate set (tag 15). Answered by
    /// [`Message::HeavyHittersOk`].
    HeavyHitters {
        /// Target deployment name.
        deployment: String,
        /// Return at most this many hitters.
        k: u64,
        /// Admission z-score: a candidate is admitted only if its
        /// estimate clears `z · stddev` under the null.
        z: f64,
        /// Candidate key hashes (see `ldp_sparse::key_hash`).
        candidates: Vec<u64>,
    },
    /// Server → client: the admitted heavy hitters, ordered by estimate
    /// descending with key-hash-ascending tie-break (tag 16). The three
    /// arrays are parallel.
    HeavyHittersOk {
        /// Reports contributing to the estimates.
        reports: u64,
        /// Admitted candidates' key hashes.
        keys: Vec<u64>,
        /// Unbiased count estimates, one per key.
        estimates: Vec<f64>,
        /// Null standard deviations, one per key.
        stddevs: Vec<f64>,
    },
    /// Client → server: unbiased point estimate for one pre-hashed
    /// open-domain key (tag 17). Answered by [`Message::QueryOk`].
    SparsePoint {
        /// Target deployment name.
        deployment: String,
        /// The key hash to estimate (see `ldp_sparse::key_hash`).
        key_hash: u64,
    },
}

impl Message {
    /// The frame kind tag for this message.
    pub fn tag(&self) -> u16 {
        match self {
            Message::Error { .. } => 1,
            Message::Info => 2,
            Message::InfoOk { .. } => 3,
            Message::Submit { .. } => 4,
            Message::SubmitOk { .. } => 5,
            Message::Query { .. } => 6,
            Message::QueryOk { .. } => 7,
            Message::Answers { .. } => 8,
            Message::AnswersOk { .. } => 9,
            Message::Checkpoint { .. } => 10,
            Message::CheckpointOk { .. } => 11,
            Message::Shutdown => 12,
            Message::ShutdownOk => 13,
            Message::SubmitSparse { .. } => 14,
            Message::HeavyHitters { .. } => 15,
            Message::HeavyHittersOk { .. } => 16,
            Message::SparsePoint { .. } => 17,
        }
    }

    /// Short human name for diagnostics ([`WireError::UnexpectedKind`]).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Error { .. } => "Error",
            Message::Info => "Info",
            Message::InfoOk { .. } => "InfoOk",
            Message::Submit { .. } => "Submit",
            Message::SubmitOk { .. } => "SubmitOk",
            Message::Query { .. } => "Query",
            Message::QueryOk { .. } => "QueryOk",
            Message::Answers { .. } => "Answers",
            Message::AnswersOk { .. } => "AnswersOk",
            Message::Checkpoint { .. } => "Checkpoint",
            Message::CheckpointOk { .. } => "CheckpointOk",
            Message::Shutdown => "Shutdown",
            Message::ShutdownOk => "ShutdownOk",
            Message::SubmitSparse { .. } => "SubmitSparse",
            Message::HeavyHitters { .. } => "HeavyHitters",
            Message::HeavyHittersOk { .. } => "HeavyHittersOk",
            Message::SparsePoint { .. } => "SparsePoint",
        }
    }
}

/// Payload writer: explicit little-endian layout, mirroring the
/// `ldp-store` codec's `Writer` discipline.
#[derive(Debug, Default)]
struct Payload {
    buf: Vec<u8>,
}

impl Payload {
    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn put_u64s(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
    }

    fn put_f64s(&mut self, vs: &[f64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f64(v);
        }
    }
}

/// Payload reader: strict, bounds-checked, typed errors.
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() < len {
            return Err(WireError::Truncated {
                needed: len,
                remaining: self.bytes.len(),
            });
        }
        let (head, tail) = self.bytes.split_at(len);
        self.bytes = tail;
        Ok(head)
    }

    fn get_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a count prefix and validates it against both a semantic
    /// limit and the bytes actually remaining, so a corrupt count can
    /// never over-allocate.
    fn get_len(&mut self, limit: usize, item_bytes: usize, what: &str) -> Result<usize, WireError> {
        let raw = self.get_u64()?;
        let len = usize::try_from(raw)
            .ok()
            .filter(|&len| len <= limit)
            .ok_or_else(|| WireError::Malformed(format!("{what} count {raw} exceeds {limit}")))?;
        if len.saturating_mul(item_bytes) > self.bytes.len() {
            return Err(WireError::Truncated {
                needed: len * item_bytes,
                remaining: self.bytes.len(),
            });
        }
        Ok(len)
    }

    fn get_str(&mut self, limit: usize, what: &str) -> Result<String, WireError> {
        let len = self.get_len(limit, 1, what)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed(format!("{what} is not UTF-8")))
    }

    fn get_u64s(&mut self, limit: usize, what: &str) -> Result<Vec<u64>, WireError> {
        let len = self.get_len(limit, 8, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    fn get_f64s(&mut self, limit: usize, what: &str) -> Result<Vec<f64>, WireError> {
        let len = self.get_len(limit, 8, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing payload bytes",
                self.bytes.len()
            )))
        }
    }
}

fn encode_payload(msg: &Message) -> Vec<u8> {
    let mut p = Payload::default();
    match msg {
        Message::Error { code, message } => {
            p.put_u16(code.as_tag());
            p.put_str(message);
        }
        Message::Info | Message::Shutdown | Message::ShutdownOk => {}
        Message::InfoOk { deployments } => {
            p.put_u64(deployments.len() as u64);
            for d in deployments {
                p.put_str(&d.name);
                p.put_u64(d.domain_size);
                p.put_u64(d.num_outputs);
                p.put_u64(d.num_queries);
                p.put_f64(d.epsilon);
                p.put_u64(d.binding);
                p.put_u64(d.epoch);
                p.put_u64(d.batches);
                p.put_u64(d.reports);
            }
        }
        Message::Submit {
            deployment,
            reports,
        } => {
            p.put_str(deployment);
            p.put_u64s(reports);
        }
        Message::SubmitOk { accepted, pending } => {
            p.put_u64(*accepted);
            p.put_u64(*pending);
        }
        Message::Query { deployment, query } => {
            p.put_str(deployment);
            p.put_u64(query.terms.len() as u64);
            for (name, term) in &query.terms {
                p.put_str(name);
                match term {
                    WireTerm::Marginal => p.put_u16(1),
                    WireTerm::Range { lo, hi } => {
                        p.put_u16(2);
                        p.put_u64(*lo);
                        match hi {
                            Some(hi) => {
                                p.put_u16(1);
                                p.put_u64(*hi);
                            }
                            None => p.put_u16(0),
                        }
                    }
                    WireTerm::Values(values) => {
                        p.put_u16(3);
                        p.put_u64s(values);
                    }
                    WireTerm::Key(key) => {
                        p.put_u16(4);
                        p.put_str(key);
                    }
                }
            }
        }
        Message::QueryOk {
            value,
            variance,
            stddev,
            reports,
        } => {
            p.put_f64(*value);
            p.put_f64(*variance);
            p.put_f64(*stddev);
            p.put_u64(*reports);
        }
        Message::Answers { deployment } => p.put_str(deployment),
        Message::AnswersOk { answers, reports } => {
            p.put_f64s(answers);
            p.put_u64(*reports);
        }
        Message::Checkpoint { deployment } => p.put_str(deployment),
        Message::CheckpointOk { epoch, bytes } => {
            p.put_u64(*epoch);
            p.put_u64(*bytes);
        }
        Message::SubmitSparse {
            deployment,
            reports,
        } => {
            p.put_str(deployment);
            p.put_u64s(reports);
        }
        Message::HeavyHitters {
            deployment,
            k,
            z,
            candidates,
        } => {
            p.put_str(deployment);
            p.put_u64(*k);
            p.put_f64(*z);
            p.put_u64s(candidates);
        }
        Message::HeavyHittersOk {
            reports,
            keys,
            estimates,
            stddevs,
        } => {
            p.put_u64(*reports);
            p.put_u64s(keys);
            p.put_f64s(estimates);
            p.put_f64s(stddevs);
        }
        Message::SparsePoint {
            deployment,
            key_hash,
        } => {
            p.put_str(deployment);
            p.put_u64(*key_hash);
        }
    }
    p.buf
}

fn decode_payload(tag: u16, payload: &[u8]) -> Result<Message, WireError> {
    let mut c = Cursor::new(payload);
    let msg = match tag {
        1 => Message::Error {
            code: ErrorCode::from_tag(c.get_u16()?),
            message: c.get_str(MAX_TEXT, "error message")?,
        },
        2 => Message::Info,
        3 => {
            let count = c.get_len(MAX_DEPLOYMENTS, 8, "deployment list")?;
            let mut deployments = Vec::with_capacity(count);
            for _ in 0..count {
                deployments.push(DeploymentInfo {
                    name: c.get_str(MAX_NAME, "deployment name")?,
                    domain_size: c.get_u64()?,
                    num_outputs: c.get_u64()?,
                    num_queries: c.get_u64()?,
                    epsilon: c.get_f64()?,
                    binding: c.get_u64()?,
                    epoch: c.get_u64()?,
                    batches: c.get_u64()?,
                    reports: c.get_u64()?,
                });
            }
            Message::InfoOk { deployments }
        }
        4 => Message::Submit {
            deployment: c.get_str(MAX_NAME, "deployment name")?,
            reports: c.get_u64s(usize::MAX, "report batch")?,
        },
        5 => Message::SubmitOk {
            accepted: c.get_u64()?,
            pending: c.get_u64()?,
        },
        6 => {
            let deployment = c.get_str(MAX_NAME, "deployment name")?;
            let count = c.get_len(MAX_TERMS, 2, "query terms")?;
            let mut terms = Vec::with_capacity(count);
            for _ in 0..count {
                let name = c.get_str(MAX_NAME, "attribute name")?;
                let term = match c.get_u16()? {
                    1 => WireTerm::Marginal,
                    2 => {
                        let lo = c.get_u64()?;
                        let hi = match c.get_u16()? {
                            0 => None,
                            1 => Some(c.get_u64()?),
                            other => {
                                return Err(WireError::Malformed(format!(
                                    "bad range-bound marker {other}"
                                )))
                            }
                        };
                        WireTerm::Range { lo, hi }
                    }
                    3 => WireTerm::Values(c.get_u64s(usize::MAX, "value set")?),
                    4 => WireTerm::Key(c.get_str(MAX_TEXT, "key condition")?),
                    other => return Err(WireError::Malformed(format!("unknown term tag {other}"))),
                };
                terms.push((name, term));
            }
            Message::Query {
                deployment,
                query: WireQuery { terms },
            }
        }
        7 => Message::QueryOk {
            value: c.get_f64()?,
            variance: c.get_f64()?,
            stddev: c.get_f64()?,
            reports: c.get_u64()?,
        },
        8 => Message::Answers {
            deployment: c.get_str(MAX_NAME, "deployment name")?,
        },
        9 => Message::AnswersOk {
            answers: c.get_f64s(usize::MAX, "workload answers")?,
            reports: c.get_u64()?,
        },
        10 => Message::Checkpoint {
            deployment: c.get_str(MAX_NAME, "deployment name")?,
        },
        11 => Message::CheckpointOk {
            epoch: c.get_u64()?,
            bytes: c.get_u64()?,
        },
        12 => Message::Shutdown,
        13 => Message::ShutdownOk,
        14 => Message::SubmitSparse {
            deployment: c.get_str(MAX_NAME, "deployment name")?,
            reports: c.get_u64s(usize::MAX, "sparse report batch")?,
        },
        15 => Message::HeavyHitters {
            deployment: c.get_str(MAX_NAME, "deployment name")?,
            k: c.get_u64()?,
            z: c.get_f64()?,
            candidates: c.get_u64s(MAX_CANDIDATES, "candidate set")?,
        },
        16 => {
            let reports = c.get_u64()?;
            let keys = c.get_u64s(MAX_CANDIDATES, "heavy-hitter keys")?;
            let estimates = c.get_f64s(MAX_CANDIDATES, "heavy-hitter estimates")?;
            let stddevs = c.get_f64s(MAX_CANDIDATES, "heavy-hitter stddevs")?;
            if keys.len() != estimates.len() || keys.len() != stddevs.len() {
                return Err(WireError::Malformed(format!(
                    "heavy-hitter arrays disagree: {} keys, {} estimates, {} stddevs",
                    keys.len(),
                    estimates.len(),
                    stddevs.len()
                )));
            }
            Message::HeavyHittersOk {
                reports,
                keys,
                estimates,
                stddevs,
            }
        }
        17 => Message::SparsePoint {
            deployment: c.get_str(MAX_NAME, "deployment name")?,
            key_hash: c.get_u64()?,
        },
        found => return Err(WireError::UnknownKind { found }),
    };
    c.finish()?;
    Ok(msg)
}

/// Seals a raw payload under the envelope with an arbitrary kind tag.
/// This is the layout primitive [`encode_frame`] uses; it is public so
/// tests and tooling can forge frames (unknown kinds, future versions)
/// without re-implementing the checksum.
pub fn encode_raw_frame(tag: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + payload.len() + CHECKSUM);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Encodes one message as a complete frame (envelope + payload +
/// checksum).
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    encode_raw_frame(msg.tag(), &encode_payload(msg))
}

/// Decodes exactly one frame from a byte slice. Trailing bytes after the
/// frame are a [`WireError::Malformed`] defect (streams use
/// [`read_frame`], which consumes exactly one frame).
///
/// # Errors
/// A distinct [`WireError`] per defect class — see the module docs.
pub fn decode_frame(bytes: &[u8]) -> Result<Message, WireError> {
    let mut stream = bytes;
    let msg = read_frame(&mut stream)?.ok_or(WireError::Truncated {
        needed: HEADER,
        remaining: 0,
    })?;
    if !stream.is_empty() {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after frame",
            stream.len()
        )));
    }
    Ok(msg)
}

/// Fills `buf` from the reader, distinguishing three outcomes: filled,
/// clean EOF before any byte (`Ok(false)`), or truncation/IO failure.
fn read_fully(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(WireError::Truncated {
                    needed: buf.len(),
                    remaining: filled,
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(true)
}

/// Reads one frame from a byte stream. Returns `Ok(None)` on a clean end
/// of stream at a frame boundary (the peer hung up between requests);
/// every mid-frame defect is a typed error.
///
/// # Errors
/// A distinct [`WireError`] per defect class — see the module docs.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Message>, WireError> {
    let mut header = [0u8; HEADER];
    if !read_fully(r, &mut header)? {
        return Ok(None);
    }
    if header[0..4] != MAGIC {
        return Err(WireError::BadMagic {
            found: [header[0], header[1], header[2], header[3]],
        });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(WireError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let tag = u16::from_le_bytes([header[6], header[7]]);
    let mut raw_len = [0u8; 8];
    raw_len.copy_from_slice(&header[8..16]);
    let length = u64::from_le_bytes(raw_len);
    if length > MAX_PAYLOAD {
        return Err(WireError::Oversized {
            length,
            limit: MAX_PAYLOAD,
        });
    }
    // Cannot truncate: bounded by MAX_PAYLOAD above (narrowing casts to
    // usize are outside L4's fixed-width layout rule).
    let length = length as usize;
    let mut body = vec![0u8; length + CHECKSUM];
    if !read_fully(r, &mut body)? {
        return Err(WireError::Truncated {
            needed: HEADER + length + CHECKSUM,
            remaining: HEADER,
        });
    }
    let (payload, stored_bytes) = body.split_at(length);
    let mut stored_raw = [0u8; 8];
    stored_raw.copy_from_slice(stored_bytes);
    let stored = u64::from_le_bytes(stored_raw);
    let mut hasher_input = Vec::with_capacity(HEADER + length);
    hasher_input.extend_from_slice(&header);
    hasher_input.extend_from_slice(payload);
    let computed = fnv1a64(&hasher_input);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    // The kind tag is validated only now, under the checksum: a flipped
    // tag bit is reported as the corruption it is.
    decode_payload(tag, payload).map(Some)
}

/// Writes one message as a frame.
///
/// # Errors
/// [`WireError::Io`] if the underlying write fails.
pub fn write_frame(w: &mut impl Write, msg: &Message) -> Result<(), WireError> {
    let frame = encode_frame(msg);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Error {
                code: ErrorCode::BadBatch,
                message: "report 9 out of range".into(),
            },
            Message::Info,
            Message::InfoOk {
                deployments: vec![DeploymentInfo {
                    name: "census".into(),
                    domain_size: 16,
                    num_outputs: 16,
                    num_queries: 17,
                    epsilon: 1.0,
                    binding: 0xfeed_beef_dead_cafe,
                    epoch: 2,
                    batches: 7,
                    reports: 4096,
                }],
            },
            Message::Submit {
                deployment: "census".into(),
                reports: vec![0, 3, 3, 15],
            },
            Message::SubmitOk {
                accepted: 4,
                pending: 4,
            },
            Message::Query {
                deployment: "census".into(),
                query: WireQuery::from_query(&Query::range("age", 2..6).and_values("sex", [1]))
                    .unwrap(),
            },
            Message::QueryOk {
                value: 12.5,
                variance: 3.25,
                stddev: 1.802,
                reports: 4096,
            },
            Message::Answers {
                deployment: "census".into(),
            },
            Message::AnswersOk {
                answers: vec![1.0, -2.5, f64::MIN_POSITIVE],
                reports: 4096,
            },
            Message::Checkpoint {
                deployment: "census".into(),
            },
            Message::CheckpointOk {
                epoch: 3,
                bytes: 2104,
            },
            Message::Shutdown,
            Message::ShutdownOk,
            Message::SubmitSparse {
                deployment: "urls".into(),
                reports: vec![0x0001_0007, 0xffff_0003, 42],
            },
            Message::HeavyHitters {
                deployment: "urls".into(),
                k: 10,
                z: 4.0,
                candidates: vec![7, 11, u64::MAX],
            },
            Message::HeavyHittersOk {
                reports: 2048,
                keys: vec![11, 7],
                estimates: vec![900.5, 411.25],
                stddevs: vec![32.0, 32.0],
            },
            Message::SparsePoint {
                deployment: "urls".into(),
                key_hash: 0x48aa_1706_5f03_4538,
            },
        ]
    }

    #[test]
    fn every_message_round_trips_exactly() {
        for msg in sample_messages() {
            let frame = encode_frame(&msg);
            assert_eq!(decode_frame(&frame).unwrap(), msg, "{}", msg.kind_name());
        }
    }

    #[test]
    fn stream_of_frames_reads_in_order_then_clean_eof() {
        let msgs = sample_messages();
        let mut bytes = Vec::new();
        for m in &msgs {
            bytes.extend_from_slice(&encode_frame(m));
        }
        let mut stream = &bytes[..];
        for m in &msgs {
            assert_eq!(read_frame(&mut stream).unwrap().as_ref(), Some(m));
        }
        assert_eq!(read_frame(&mut stream).unwrap(), None, "clean EOF");
    }

    #[test]
    fn query_round_trips_through_wire_form() {
        let query = Query::marginal(["age"])
            .and_range("income", 3..)
            .and_values("state", [0, 2, 4]);
        let wire = WireQuery::from_query(&query).unwrap();
        let rebuilt = WireQuery::from_query(&wire.to_query()).unwrap();
        assert_eq!(wire, rebuilt);
    }

    #[test]
    fn key_query_round_trips_through_wire_form() {
        let query = Query::key("url", "https://example.com/?q=a&b=∞");
        let wire = WireQuery::from_query(&query).unwrap();
        let rebuilt = WireQuery::from_query(&wire.to_query()).unwrap();
        assert_eq!(wire, rebuilt);
        assert_eq!(
            wire.to_query().as_key_query(),
            Some(("url", "https://example.com/?q=a&b=∞"))
        );
    }

    #[test]
    fn heavy_hitter_array_mismatch_is_malformed() {
        let mut p = Payload::default();
        p.put_u64(100); // reports
        p.put_u64s(&[1, 2]); // 2 keys
        p.put_f64s(&[1.0]); // but 1 estimate
        p.put_f64s(&[1.0]);
        let frame = encode_raw_frame(16, &p.buf);
        assert!(matches!(
            decode_frame(&frame).unwrap_err(),
            WireError::Malformed(_)
        ));
    }

    #[test]
    fn predicate_queries_are_refused() {
        let query = Query::predicate("age", |v| v > 3);
        assert_eq!(
            WireQuery::from_query(&query).unwrap_err(),
            WireError::UnencodableQuery
        );
    }

    #[test]
    fn unknown_kind_is_reported_after_checksum() {
        let frame = encode_raw_frame(999, &[]);
        assert_eq!(
            decode_frame(&frame).unwrap_err(),
            WireError::UnknownKind { found: 999 }
        );
    }

    #[test]
    fn version_skew_is_typed() {
        let mut frame = encode_frame(&Message::Info);
        frame[4] = 2; // version 2
        assert!(matches!(
            decode_frame(&frame).unwrap_err(),
            WireError::UnsupportedVersion {
                found: 2,
                supported: VERSION
            }
        ));
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocation() {
        let mut frame = encode_frame(&Message::Info);
        frame[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame).unwrap_err(),
            WireError::Oversized {
                length: u64::MAX,
                ..
            }
        ));
    }

    #[test]
    fn empty_input_is_truncated_for_slices_and_eof_for_streams() {
        assert!(matches!(
            decode_frame(&[]).unwrap_err(),
            WireError::Truncated { .. }
        ));
        let mut empty: &[u8] = &[];
        assert_eq!(read_frame(&mut empty).unwrap(), None);
    }

    #[test]
    fn corrupt_collection_count_cannot_overallocate() {
        // A Submit frame whose report count claims 2^60 entries but whose
        // payload is tiny: the count/limit guard must reject before any
        // allocation happens.
        let mut p = Payload::default();
        p.put_str("census");
        p.put_u64(1 << 60);
        let frame = encode_raw_frame(4, &p.buf);
        assert!(matches!(
            decode_frame(&frame).unwrap_err(),
            WireError::Truncated { .. }
        ));
    }
}
