//! ldp-serve: the network front door for an LDP deployment.
//!
//! Everything below `crates/serve` turns the in-process
//! [`Deployment`](ldp::pipeline::Deployment) / `StreamIngestor` pipeline
//! into a long-running daemon:
//!
//! - [`wire`] — the versioned, checksummed, length-prefixed frame codec
//!   (magic `LDPW`), the TCP sibling of the `ldp-store` snapshot codec.
//!   Byte-level spec: `docs/WIRE_PROTOCOL.md`.
//! - [`Server`] — a multi-threaded `TcpListener` daemon hosting named
//!   deployments — dense workload deployments ([`Server::host`]) and
//!   open-domain sparse deployments ([`Server::host_sparse`]) side by
//!   side — with per-connection aggregation shards merged exactly at
//!   every checkpoint/query barrier, and atomic snapshot persistence
//!   for crash recovery.
//! - [`ServeClient`] — the blocking request/response handle: submit
//!   report batches (dense or sparse), ask ad-hoc queries, point
//!   queries and top-k heavy hitters over open domains, evaluate the
//!   deployed workload, checkpoint, shut down.
//! - `ldp-served` — the packaged daemon binary (`src/main.rs`).
//!
//! # The determinism contract, over TCP
//!
//! Counts are integers and merges are exact, so the daemon inherits the
//! repo-wide bit-determinism contract: **N concurrent connections
//! produce answers byte-equal to one connection submitting every batch
//! itself**, at any worker count and any kernel backend; and a daemon
//! killed (`SIGKILL`) after a checkpoint, relaunched from the snapshot,
//! and fed the remaining batches answers **byte-equal to a process that
//! never died**. `tests/server.rs` and `tests/restart.rs` assert both.
//!
//! # A complete round trip
//!
//! ```
//! use ldp::prelude::*;
//! use ldp_serve::{ServeClient, Server, ServerConfig};
//!
//! // Deploy a schema'd pipeline and host it on an ephemeral port.
//! let deployment = Pipeline::for_schema(Schema::new([("color", 3), ("size", 2)]))
//!     .queries([Query::marginal(["color"]), Query::total()])
//!     .epsilon(1.0)
//!     .baseline(Baseline::RandomizedResponse)
//!     .unwrap();
//! let binding = deployment.binding();
//! let mut server = Server::bind(ServerConfig::default()).unwrap();
//! server.host("survey", deployment).unwrap();
//! let handle = server.spawn().unwrap();
//!
//! // Connect, verify we reached the deployment we meant to, submit.
//! let mut client = ServeClient::connect(handle.addr()).unwrap();
//! let info = client.info().unwrap();
//! assert_eq!(info[0].name, "survey");
//! assert_eq!(info[0].binding, binding); // end-to-end identity check
//! client.submit("survey", &[0, 1, 2, 3, 4, 5]).unwrap();
//!
//! // Ad-hoc question and full workload evaluation.
//! let red = client.answer("survey", &Query::equals("color", 0)).unwrap();
//! assert_eq!(red.reports, 6);
//! let all = client.answers("survey").unwrap();
//! assert_eq!(all.answers.len(), 4); // 3 marginal cells + 1 total
//!
//! client.shutdown().unwrap();
//! handle.join().unwrap();
//! ```

pub mod client;
pub mod server;
pub mod wire;

pub use client::{
    CheckpointAck, HeavyHittersAnswer, ServeAnswer, ServeClient, SubmitAck, WorkloadAnswers,
};
pub use server::{ServeError, Server, ServerConfig, ServerHandle};
pub use wire::{DeploymentInfo, ErrorCode, Message, WireError, WireQuery};
