//! In-process server integration: the serving extension of the repo's
//! determinism contract (N connections byte-equal to one), checkpoint
//! durability, binding enforcement, and typed remote errors.

use std::path::PathBuf;

use ldp::prelude::*;
use ldp_serve::wire::ErrorCode;
use ldp_serve::{ServeClient, ServeError, Server, ServerConfig, WireError};

/// The test deployment: a 3×2 schema under randomized response, so
/// valid reports are `0..6`.
fn deployment(epsilon: f64) -> Deployment {
    Pipeline::for_schema(Schema::new([("color", 3), ("size", 2)]))
        .queries([Query::marginal(["color", "size"]), Query::total()])
        .epsilon(epsilon)
        .baseline(Baseline::RandomizedResponse)
        .unwrap()
}

/// Deterministic report stream: batch `b` of `len` reports over `m`
/// outputs.
fn batch(b: u64, len: usize, m: u64) -> Vec<u64> {
    (0..len as u64).map(|i| (b * 31 + i * 7 + 3) % m).collect()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldp-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_server(
    dir: Option<PathBuf>,
    workers: usize,
) -> (std::net::SocketAddr, ldp_serve::ServerHandle) {
    let mut server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        dir,
        workers,
    })
    .unwrap();
    server.host("survey", deployment(1.0)).unwrap();
    let addr = server.local_addr();
    (addr, server.spawn().unwrap())
}

#[test]
fn n_concurrent_connections_are_byte_equal_to_one() {
    const CONNS: usize = 4;
    const BATCHES_PER_CONN: u64 = 8;

    // Reference run: one connection submits every batch.
    let (addr, handle) = spawn_server(None, 2);
    let mut client = ServeClient::connect(addr).unwrap();
    for c in 0..CONNS as u64 {
        for b in 0..BATCHES_PER_CONN {
            client.submit("survey", &batch(c * 100 + b, 64, 6)).unwrap();
        }
    }
    let reference = client.answers("survey").unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();

    // Concurrent run: the same batches race in over CONNS connections.
    let (addr, handle) = spawn_server(None, CONNS + 1);
    std::thread::scope(|scope| {
        for c in 0..CONNS as u64 {
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                for b in 0..BATCHES_PER_CONN {
                    let ack = client.submit("survey", &batch(c * 100 + b, 64, 6)).unwrap();
                    assert_eq!(ack.accepted, 64);
                }
            });
        }
    });
    let mut client = ServeClient::connect(addr).unwrap();
    let concurrent = client.answers("survey").unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();

    assert_eq!(reference.reports, concurrent.reports);
    let reference_bits: Vec<u64> = reference.answers.iter().map(|a| a.to_bits()).collect();
    let concurrent_bits: Vec<u64> = concurrent.answers.iter().map(|a| a.to_bits()).collect();
    assert_eq!(
        reference_bits, concurrent_bits,
        "N connections must be byte-equal to one"
    );
}

#[test]
fn queries_interleaved_with_concurrent_submissions_stay_consistent() {
    let (addr, handle) = spawn_server(None, 4);
    std::thread::scope(|scope| {
        for c in 0..2u64 {
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                for b in 0..16 {
                    client.submit("survey", &batch(c * 17 + b, 32, 6)).unwrap();
                }
            });
        }
        scope.spawn(move || {
            let mut client = ServeClient::connect(addr).unwrap();
            let mut last = 0u64;
            for _ in 0..8 {
                let a = client.answer("survey", &Query::equals("color", 1)).unwrap();
                // The merge barrier only ever adds reports.
                assert!(a.reports >= last, "report count went backwards");
                last = a.reports;
            }
        });
    });
    let mut client = ServeClient::connect(addr).unwrap();
    let total = client.answers("survey").unwrap();
    assert_eq!(
        total.reports,
        2 * 16 * 32,
        "every acknowledged batch merged"
    );
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn checkpoint_then_rehost_resumes_byte_equal() {
    let dir = fresh_dir("resume");

    // First life: submit, checkpoint (durable), submit more, graceful
    // shutdown (persists the final state).
    let (addr, handle) = spawn_server(Some(dir.clone()), 2);
    let mut client = ServeClient::connect(addr).unwrap();
    for b in 0..4 {
        client.submit("survey", &batch(b, 64, 6)).unwrap();
    }
    let ack = client.checkpoint("survey").unwrap();
    assert_eq!(ack.epoch, 1);
    assert!(ack.bytes > 0);
    for b in 4..7 {
        client.submit("survey", &batch(b, 64, 6)).unwrap();
    }
    let final_answers = client.answers("survey").unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();

    // Second life: hosting the same deployment resumes the final
    // snapshot; answers are byte-equal to the moment of shutdown.
    let mut server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        dir: Some(dir.clone()),
        workers: 2,
    })
    .unwrap();
    let resumed = server.host("survey", deployment(1.0)).unwrap();
    assert!(resumed, "snapshot on disk must be resumed");
    let addr = server.local_addr();
    let handle = server.spawn().unwrap();
    let mut client = ServeClient::connect(addr).unwrap();
    let revived = client.answers("survey").unwrap();
    assert_eq!(revived.reports, final_answers.reports);
    let before: Vec<u64> = final_answers.answers.iter().map(|a| a.to_bits()).collect();
    let after: Vec<u64> = revived.answers.iter().map(|a| a.to_bits()).collect();
    assert_eq!(before, after, "restart must be byte-invisible");
    client.shutdown().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hosting_over_a_foreign_snapshot_is_a_typed_binding_mismatch() {
    let dir = fresh_dir("binding");

    // Write a snapshot under ε = 1.0 …
    let (addr, handle) = spawn_server(Some(dir.clone()), 2);
    let mut client = ServeClient::connect(addr).unwrap();
    client.submit("survey", &batch(0, 16, 6)).unwrap();
    client.checkpoint("survey").unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();

    // … then try to host a *different* deployment (ε = 2.0) on it.
    let mut server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        dir: Some(dir.clone()),
        workers: 2,
    })
    .unwrap();
    match server.host("survey", deployment(2.0)) {
        Err(ServeError::Store(StoreError::BindingMismatch { .. })) => {}
        other => panic!("expected a typed binding mismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn remote_errors_are_typed_and_batches_are_atomic() {
    let (addr, handle) = spawn_server(None, 2);
    let mut client = ServeClient::connect(addr).unwrap();

    // Unknown deployment.
    match client.submit("nope", &[0]) {
        Err(WireError::Remote {
            code: ErrorCode::UnknownDeployment,
            ..
        }) => {}
        other => panic!("expected UnknownDeployment, got {other:?}"),
    }

    // A batch with one bad report counts nothing — not even the valid
    // prefix.
    match client.submit("survey", &[0, 1, 2, 6]) {
        Err(WireError::Remote {
            code: ErrorCode::BadBatch,
            message,
        }) => assert!(message.contains('6'), "names the offender: {message}"),
        other => panic!("expected BadBatch, got {other:?}"),
    }
    let answers = client.answers("survey").unwrap();
    assert_eq!(answers.reports, 0, "rejected batch must not count");

    // Bad ad-hoc query: unknown attribute, typed server-side.
    match client.answer("survey", &Query::equals("shape", 0)) {
        Err(WireError::Remote {
            code: ErrorCode::BadQuery,
            ..
        }) => {}
        other => panic!("expected BadQuery, got {other:?}"),
    }

    // Predicate queries never leave the client.
    let predicate = Query::predicate("color", |v| v > 0);
    match client.answer("survey", &predicate) {
        Err(WireError::UnencodableQuery) => {}
        other => panic!("expected UnencodableQuery, got {other:?}"),
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn info_reports_identity_and_merged_counters() {
    let (addr, handle) = spawn_server(None, 2);
    let binding = deployment(1.0).binding();
    let mut client = ServeClient::connect(addr).unwrap();
    client.submit("survey", &batch(0, 10, 6)).unwrap();
    let info = client.info().unwrap();
    assert_eq!(info.len(), 1);
    let d = &info[0];
    assert_eq!(d.name, "survey");
    assert_eq!(d.domain_size, 6);
    assert_eq!(d.num_outputs, 6);
    assert_eq!(d.num_queries, 7); // 6 contingency cells + total
    assert_eq!(d.epsilon, 1.0);
    assert_eq!(d.binding, binding, "wire binding matches local rebuild");
    assert_eq!(d.reports, 10, "info runs the merge barrier");
    assert_eq!(d.batches, 1);
    client.shutdown().unwrap();
    handle.join().unwrap();
}
