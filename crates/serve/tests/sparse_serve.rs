//! End-to-end serving of open-domain deployments: wire round trips,
//! N-connection merge equality, and `kill -9` crash recovery against
//! the real `ldp-served` binary — byte-equal answers at
//! `LDP_THREADS ∈ {1, 4}` and every kernel backend this CPU supports.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use ldp_linalg::kernels::Backend;
use ldp_serve::{ServeClient, Server, ServerConfig};
use ldp_sparse::{key_hash, SparseDeployment};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DEPLOY: &str = "urls:open=url:eps=2.0:bits=12";

/// The deployment the spec above describes, for client-side encoding.
fn deployment() -> SparseDeployment {
    SparseDeployment::hadamard("url", 2.0, 12).unwrap()
}

/// A deterministic batch of oracle reports: a hot-key schedule plus a
/// cold tail, randomized with a per-batch seed.
fn batch(b: u64, len: usize) -> Vec<u64> {
    let client = deployment().client();
    let mut rng = StdRng::seed_from_u64(0xbeef_0000 + b);
    (0..len)
        .map(|i| {
            let key = match i % 4 {
                0 | 1 => "https://hot.example/".to_string(),
                2 => "https://warm.example/".to_string(),
                _ => format!("https://cold.example/{b}/{i}"),
            };
            client.respond(&key, &mut rng)
        })
        .collect()
}

struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    /// Launches `ldp-served` on an ephemeral port and waits for its
    /// "listening on" line.
    fn launch(dir: &Path, threads: &str, backend: Backend) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_ldp-served"))
            .args(["--addr", "127.0.0.1:0", "--workers", "3"])
            .args(["--dir", dir.to_str().unwrap()])
            .args(["--deploy", DEPLOY])
            .env("LDP_THREADS", threads)
            .env("LDP_KERNEL", backend.as_str())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn ldp-served");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("daemon exited before listening")
                .expect("daemon stdout read");
            if let Some(addr) = line.strip_prefix("ldp-served listening on ") {
                break addr.parse().expect("daemon printed a socket address");
            }
        };
        // Keep draining stdout in the background so the daemon never
        // blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Daemon { child, addr }
    }

    fn client(&self) -> ServeClient {
        ServeClient::connect(self.addr).expect("connect to daemon")
    }

    /// SIGKILL — no destructors, no flush, the crash the snapshot
    /// contract exists for.
    fn kill9(mut self) {
        self.child.kill().expect("kill -9 daemon");
        self.child.wait().expect("reap daemon");
    }

    /// Graceful stop through the protocol.
    fn shutdown(mut self) {
        self.client().shutdown().expect("graceful shutdown");
        let status = self.child.wait().expect("reap daemon");
        assert!(status.success(), "daemon exit status: {status:?}");
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldp-sparse-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn candidates() -> Vec<u64> {
    vec![
        key_hash("https://hot.example/"),
        key_hash("https://warm.example/"),
        key_hash("https://never.example/"),
    ]
}

/// The exact bit pattern of a heavy-hitter + point answer pair, for
/// byte-equality comparisons across runs.
fn answer_bits(client: &mut ServeClient) -> Vec<u64> {
    let hh = client.heavy_hitters("urls", &candidates(), 2, 4.0).unwrap();
    let point = client.point("urls", "https://hot.example/").unwrap();
    let mut bits = vec![hh.reports, hh.hitters.len() as u64];
    for h in &hh.hitters {
        bits.push(h.key_hash);
        bits.push(h.estimate.to_bits());
        bits.push(h.stddev.to_bits());
    }
    bits.push(point.value.to_bits());
    bits.push(point.stddev.to_bits());
    bits.push(point.reports);
    bits
}

/// One crash scenario at a given thread/backend setting.
fn killed_vs_uninterrupted(threads: &str, backend: Backend) {
    let tag = format!("{threads}-{backend}");

    // Reference: a daemon that never dies ingests batches 0..8.
    let dir = fresh_dir(&format!("ref-{tag}"));
    let daemon = Daemon::launch(&dir, threads, backend);
    let mut client = daemon.client();
    for b in 0..8 {
        client.submit_sparse("urls", &batch(b, 64)).unwrap();
    }
    let reference = answer_bits(&mut client);
    drop(client);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // Crash run: ingest 0..4, checkpoint (durable barrier), ingest two
    // doomed batches that never reach a barrier, then kill -9.
    let dir = fresh_dir(&format!("crash-{tag}"));
    let daemon = Daemon::launch(&dir, threads, backend);
    let mut client = daemon.client();
    for b in 0..4 {
        client.submit_sparse("urls", &batch(b, 64)).unwrap();
    }
    let ack = client.checkpoint("urls").unwrap();
    assert_eq!(ack.epoch, 1);
    for doomed in [100, 101] {
        client.submit_sparse("urls", &batch(doomed, 64)).unwrap();
    }
    drop(client);
    daemon.kill9();

    // Relaunch from the snapshot: exactly the checkpointed state
    // survives; re-submit 4..8 and compare bits.
    let daemon = Daemon::launch(&dir, threads, backend);
    let mut client = daemon.client();
    let info = client.info().unwrap();
    assert_eq!(
        info[0].reports,
        4 * 64,
        "[{tag}] resumed state is the checkpoint barrier, no more, no less"
    );
    assert_eq!(info[0].epoch, 1, "[{tag}] epoch survives the crash");
    assert_eq!(
        info[0].binding,
        deployment().binding(),
        "[{tag}] the hosted deployment is the one we encode for"
    );
    for b in 4..8 {
        client.submit_sparse("urls", &batch(b, 64)).unwrap();
    }
    let resumed = answer_bits(&mut client);
    drop(client);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        reference, resumed,
        "[{tag}] kill -9 + resume must be byte-equal to an uninterrupted run"
    );
}

#[test]
fn sparse_kill_dash_nine_resume_is_byte_equal_across_threads_and_backends() {
    for backend in Backend::available() {
        for threads in ["1", "4"] {
            killed_vs_uninterrupted(threads, backend);
        }
    }
}

/// In-process: N concurrent connections must leave state byte-equal to
/// one connection submitting everything, measured at the snapshot file
/// and the answer bits.
#[test]
fn n_connections_are_byte_equal_to_one() {
    let mut snapshots = Vec::new();
    let mut answers = Vec::new();
    for conns in [1usize, 4] {
        let dir = fresh_dir(&format!("conns-{conns}"));
        let mut server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            dir: Some(dir.clone()),
            workers: 5,
        })
        .unwrap();
        server.host_sparse("urls", deployment()).unwrap();
        let handle = server.spawn().unwrap();

        let mut clients: Vec<ServeClient> = (0..conns)
            .map(|_| ServeClient::connect(handle.addr()).unwrap())
            .collect();
        for b in 0..8u64 {
            let c = (b as usize) % conns;
            clients[c].submit_sparse("urls", &batch(b, 64)).unwrap();
        }
        let mut observer = ServeClient::connect(handle.addr()).unwrap();
        observer.checkpoint("urls").unwrap();
        answers.push(answer_bits(&mut observer));
        observer.shutdown().unwrap();
        drop(clients);
        handle.join().unwrap();
        snapshots.push(std::fs::read(dir.join("urls.ldpc")).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(
        answers[0], answers[1],
        "answers must not depend on connection sharding"
    );
    assert_eq!(
        snapshots[0], snapshots[1],
        "snapshot files must not depend on connection sharding"
    );
}

/// Kind routing: dense requests against a sparse deployment (and vice
/// versa) fail with typed Unsupported/BadQuery errors, never panics or
/// silent miscounts.
#[test]
fn kind_mismatches_are_typed_errors() {
    use ldp::prelude::*;
    use ldp_serve::WireError;

    let mut server = Server::bind(ServerConfig::default()).unwrap();
    server.host_sparse("urls", deployment()).unwrap();
    let dense = Pipeline::for_schema(Schema::new([("bin", 4)]))
        .queries([Query::total()])
        .epsilon(1.0)
        .baseline(Baseline::RandomizedResponse)
        .unwrap();
    server.host("survey", dense).unwrap();
    let handle = server.spawn().unwrap();
    let mut client = ServeClient::connect(handle.addr()).unwrap();

    // Dense submit to a sparse deployment and sparse submit to a dense
    // deployment are both refused.
    assert!(matches!(
        client.submit("urls", &[0, 1]).unwrap_err(),
        WireError::Remote { .. }
    ));
    assert!(matches!(
        client.submit_sparse("survey", &[0, 1]).unwrap_err(),
        WireError::Remote { .. }
    ));
    // Workload evaluation needs a dense workload.
    assert!(matches!(
        client.answers("urls").unwrap_err(),
        WireError::Remote { .. }
    ));
    // Point questions need an open domain.
    assert!(matches!(
        client.point("survey", "anything").unwrap_err(),
        WireError::Remote { .. }
    ));
    // A malformed oracle report is refused atomically.
    let good = batch(0, 4);
    let mut bad = good.clone();
    bad.push(u64::MAX); // seed 0xffff_ffff_ffff is fine, but y >= 2^12 is not
    assert!(matches!(
        client.submit_sparse("urls", &bad).unwrap_err(),
        WireError::Remote { .. }
    ));
    let info = client.info().unwrap();
    let urls = info.iter().find(|d| d.name == "urls").unwrap();
    assert_eq!(urls.reports, 0, "refused batches must not count");

    // A key query through the generic answer path routes to the oracle.
    let q = Query::key("url", "https://hot.example/");
    client.submit_sparse("urls", &good).unwrap();
    let answer = client.answer("urls", &q).unwrap();
    assert_eq!(answer.reports, 4);
    assert!(answer.value.is_finite() && answer.stddev > 0.0);
    // ... but a key query for the wrong attribute is refused.
    assert!(matches!(
        client
            .answer("urls", &Query::key("ip", "10.0.0.1"))
            .unwrap_err(),
        WireError::Remote { .. }
    ));

    client.shutdown().unwrap();
    handle.join().unwrap();
}
