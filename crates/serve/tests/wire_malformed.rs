//! Malformed-frame coverage: truncation at every byte boundary,
//! single-bit flips at every position, oversized length prefixes, and
//! unknown versions/kinds — each must yield its distinct typed
//! [`WireError`], and none may panic, hang, or kill the daemon's accept
//! loop.

use std::io::{Read, Write};
use std::net::TcpStream;

use ldp::prelude::*;
use ldp_serve::wire::{
    decode_frame, encode_frame, encode_raw_frame, Message, WireError, MAX_PAYLOAD, VERSION,
};
use ldp_serve::{ServeClient, Server, ServerConfig};

fn sample_frame() -> Vec<u8> {
    encode_frame(&Message::Submit {
        deployment: "survey".into(),
        reports: vec![0, 1, 2, 3, 4, 5],
    })
}

#[test]
fn truncation_at_every_byte_boundary_is_typed() {
    let frame = sample_frame();
    for cut in 0..frame.len() {
        match decode_frame(&frame[..cut]) {
            Err(WireError::Truncated { .. }) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
    // The full frame, of course, decodes.
    decode_frame(&frame).unwrap();
}

#[test]
fn every_single_bit_flip_is_detected() {
    let frame = sample_frame();
    for byte in 0..frame.len() {
        for bit in 0..8 {
            let mut corrupt = frame.clone();
            corrupt[byte] ^= 1 << bit;
            let defect = match decode_frame(&corrupt) {
                Err(defect) => defect,
                Ok(msg) => panic!("flip {byte}.{bit} decoded silently as {msg:?}"),
            };
            // Defects are classified by region: the envelope's
            // pre-checksum fields get their own named errors; everything
            // under the checksum reads as the corruption it is.
            match byte {
                0..=3 => assert!(
                    matches!(defect, WireError::BadMagic { .. }),
                    "flip {byte}.{bit}: {defect:?}"
                ),
                4..=5 => assert!(
                    matches!(defect, WireError::UnsupportedVersion { .. }),
                    "flip {byte}.{bit}: {defect:?}"
                ),
                // Kind tag (6..8): validated only under the checksum.
                6..=7 => assert!(
                    matches!(defect, WireError::ChecksumMismatch { .. }),
                    "flip {byte}.{bit}: {defect:?}"
                ),
                // Length prefix (8..16): oversized, short (truncated),
                // or long (checksum over shifted bytes).
                8..=15 => assert!(
                    matches!(
                        defect,
                        WireError::Oversized { .. }
                            | WireError::Truncated { .. }
                            | WireError::ChecksumMismatch { .. }
                            | WireError::Malformed(_)
                    ),
                    "flip {byte}.{bit}: {defect:?}"
                ),
                // Payload and checksum bytes.
                _ => assert!(
                    matches!(defect, WireError::ChecksumMismatch { .. }),
                    "flip {byte}.{bit}: {defect:?}"
                ),
            }
        }
    }
}

#[test]
fn oversized_and_skewed_envelopes_are_refused_up_front() {
    // Length prefix beyond the cap: refused before any allocation.
    let mut frame = sample_frame();
    frame[8..16].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    assert!(matches!(
        decode_frame(&frame).unwrap_err(),
        WireError::Oversized { length, limit } if length == MAX_PAYLOAD + 1 && limit == MAX_PAYLOAD
    ));

    // A future protocol version.
    let mut frame = sample_frame();
    frame[4..6].copy_from_slice(&9u16.to_le_bytes());
    assert!(matches!(
        decode_frame(&frame).unwrap_err(),
        WireError::UnsupportedVersion { found: 9, supported } if supported == VERSION
    ));

    // A checksummed frame with an unknown kind tag: the one case where
    // UnknownKind (not ChecksumMismatch) is the verdict.
    assert!(matches!(
        decode_frame(&encode_raw_frame(999, &[])).unwrap_err(),
        WireError::UnknownKind { found: 999 }
    ));

    // A well-enveloped frame whose payload lies about its contents.
    let garbage_payload = encode_raw_frame(4, &[0xff; 3]);
    assert!(decode_frame(&garbage_payload).is_err());
}

/// Live-socket abuse: garbage, corrupt frames, and half-frames must
/// answer with a typed error frame (when writable) or a clean close —
/// and the accept loop must keep serving well-behaved clients after
/// every one of them.
#[test]
fn abusive_connections_never_take_down_the_accept_loop() {
    let deployment = Pipeline::for_schema(Schema::new([("bin", 4)]))
        .queries([Query::marginal(["bin"])])
        .epsilon(1.0)
        .baseline(Baseline::RandomizedResponse)
        .unwrap();
    let mut server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        dir: None,
        workers: 2,
    })
    .unwrap();
    server.host("bins", deployment).unwrap();
    let addr = server.local_addr();
    let handle = server.spawn().unwrap();

    let mut corrupt_frame = encode_frame(&Message::Info);
    let last = corrupt_frame.len() - 1;
    corrupt_frame[last] ^= 0x40; // checksum bit flip

    let mut oversized = encode_frame(&Message::Info);
    oversized[8..16].copy_from_slice(&u64::MAX.to_le_bytes());

    let half_frame = sample_frame()[..10].to_vec();

    let abuses: Vec<Vec<u8>> = vec![
        b"GET / HTTP/1.1\r\n\r\n".to_vec(), // not our protocol at all
        corrupt_frame,
        oversized,
        encode_raw_frame(999, &[]), // unknown kind
        half_frame,                 // hang up mid-frame
        Vec::new(),                 // connect and say nothing
    ];
    for abuse in &abuses {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(abuse).unwrap();
        // Half-close our write side so the server sees EOF and can't
        // block forever waiting for the rest of a frame.
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        // Drain whatever the server says (an error frame or a clean
        // close); the point is it responds and moves on.
        let mut response = Vec::new();
        let _ = stream.read_to_end(&mut response);

        // After every abuse, a well-behaved client still gets served.
        let mut client = ServeClient::connect(addr).unwrap();
        client.submit("bins", &[0, 1, 2, 3]).unwrap();
        let answers = client.answers("bins").unwrap();
        assert_eq!(answers.answers.len(), 4);
    }

    let mut client = ServeClient::connect(addr).unwrap();
    let total = client.answers("bins").unwrap();
    assert_eq!(
        total.reports,
        4 * abuses.len() as u64,
        "every well-behaved batch between abuses was merged"
    );
    client.shutdown().unwrap();
    handle.join().unwrap();
}
