//! End-to-end crash recovery against the real `ldp-served` binary:
//! `kill -9` the daemon, relaunch it from its snapshot, and assert the
//! answers are byte-equal to a daemon that never died — at
//! `LDP_THREADS ∈ {1, 4}` and every kernel backend this CPU supports.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use ldp_linalg::kernels::Backend;
use ldp_serve::ServeClient;

const DEPLOY: &str = "survey:color=3,size=2:eps=1.0:baseline=rr";
const NUM_OUTPUTS: u64 = 6;

struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    /// Launches `ldp-served` on an ephemeral port and waits for its
    /// "listening on" line.
    fn launch(dir: &Path, threads: &str, backend: Backend) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_ldp-served"))
            .args(["--addr", "127.0.0.1:0", "--workers", "3"])
            .args(["--dir", dir.to_str().unwrap()])
            .args(["--deploy", DEPLOY])
            .env("LDP_THREADS", threads)
            .env("LDP_KERNEL", backend.as_str())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn ldp-served");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("daemon exited before listening")
                .expect("daemon stdout read");
            if let Some(addr) = line.strip_prefix("ldp-served listening on ") {
                break addr.parse().expect("daemon printed a socket address");
            }
        };
        // Keep draining stdout in the background so the daemon never
        // blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Daemon { child, addr }
    }

    fn client(&self) -> ServeClient {
        ServeClient::connect(self.addr).expect("connect to daemon")
    }

    /// SIGKILL — no destructors, no flush, the crash the snapshot
    /// contract exists for.
    fn kill9(mut self) {
        self.child.kill().expect("kill -9 daemon");
        self.child.wait().expect("reap daemon");
    }

    /// Graceful stop through the protocol.
    fn shutdown(mut self) {
        self.client().shutdown().expect("graceful shutdown");
        let status = self.child.wait().expect("reap daemon");
        assert!(status.success(), "daemon exit status: {status:?}");
    }
}

fn batch(b: u64, len: usize) -> Vec<u64> {
    (0..len as u64)
        .map(|i| (b * 31 + i * 7 + 3) % NUM_OUTPUTS)
        .collect()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldp-served-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One full scenario at a given thread/backend setting, returning the
/// final workload answers as exact bits.
fn killed_vs_uninterrupted(threads: &str, backend: Backend) {
    let tag = format!("{threads}-{backend}");

    // Reference: a daemon that never dies ingests batches 0..8.
    let dir = fresh_dir(&format!("ref-{tag}"));
    let daemon = Daemon::launch(&dir, threads, backend);
    let mut client = daemon.client();
    for b in 0..8 {
        client.submit("survey", &batch(b, 64)).unwrap();
    }
    let reference = client.answers("survey").unwrap();
    drop(client);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // Crash run: ingest 0..4, checkpoint (durable barrier), ingest two
    // doomed batches that never reach a barrier, then kill -9.
    let dir = fresh_dir(&format!("crash-{tag}"));
    let daemon = Daemon::launch(&dir, threads, backend);
    let mut client = daemon.client();
    for b in 0..4 {
        client.submit("survey", &batch(b, 64)).unwrap();
    }
    let ack = client.checkpoint("survey").unwrap();
    assert_eq!(ack.epoch, 1);
    for doomed in [100, 101] {
        client.submit("survey", &batch(doomed, 64)).unwrap();
    }
    drop(client);
    daemon.kill9();

    // Relaunch from the snapshot: exactly the checkpointed state
    // survives; re-submit 4..8 and compare bits.
    let daemon = Daemon::launch(&dir, threads, backend);
    let mut client = daemon.client();
    let info = client.info().unwrap();
    assert_eq!(
        info[0].reports,
        4 * 64,
        "[{tag}] resumed state is the checkpoint barrier, no more, no less"
    );
    assert_eq!(info[0].epoch, 1, "[{tag}] epoch survives the crash");
    for b in 4..8 {
        client.submit("survey", &batch(b, 64)).unwrap();
    }
    let resumed = client.answers("survey").unwrap();
    drop(client);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(reference.reports, resumed.reports, "[{tag}]");
    let reference_bits: Vec<u64> = reference.answers.iter().map(|a| a.to_bits()).collect();
    let resumed_bits: Vec<u64> = resumed.answers.iter().map(|a| a.to_bits()).collect();
    assert_eq!(
        reference_bits, resumed_bits,
        "[{tag}] kill -9 + resume must be byte-equal to an uninterrupted run"
    );
}

#[test]
fn kill_dash_nine_resume_is_byte_equal_across_threads_and_backends() {
    for backend in Backend::available() {
        for threads in ["1", "4"] {
            killed_vs_uninterrupted(threads, backend);
        }
    }
}
