//! A complete client round trip against an ldp-serve daemon.
//!
//! By default this example is fully self-contained: it spawns an
//! in-process [`Server`] on an ephemeral port, then connects to it like
//! any external client would. Set `LDP_SERVE_ADDR=host:port` to aim the
//! client at an already-running `ldp-served` daemon instead (the CI
//! serve-smoke job does exactly that); the daemon must host a
//! deployment named `survey` with schema `color=3,size=2`:
//!
//! ```text
//! ldp-served --addr 127.0.0.1:7700 --deploy survey:color=3,size=2 &
//! LDP_SERVE_ADDR=127.0.0.1:7700 cargo run -p ldp-serve --example serve_roundtrip
//! ```

use ldp::prelude::*;
use ldp_serve::{ServeClient, Server, ServerConfig};
use rand::SeedableRng;

fn main() {
    // The same deployment the daemon default builds for
    // `--deploy survey:color=3,size=2`: full contingency table + total.
    let deployment = Pipeline::for_schema(Schema::new([("color", 3), ("size", 2)]))
        .queries([Query::marginal(["color", "size"]), Query::total()])
        .epsilon(1.0)
        .baseline(Baseline::RandomizedResponse)
        .expect("deploy");
    let binding = deployment.binding();

    // External daemon if LDP_SERVE_ADDR is set, in-process otherwise.
    let external = std::env::var("LDP_SERVE_ADDR").ok();
    let (addr, handle) = match &external {
        Some(addr) => (addr.clone(), None),
        None => {
            let mut server = Server::bind(ServerConfig::default()).expect("bind");
            server.host("survey", deployment.clone()).expect("host");
            let addr = server.local_addr().to_string();
            (addr, Some(server.spawn().expect("spawn")))
        }
    };
    println!("connecting to {addr}");
    let mut client = ServeClient::connect(addr.as_str()).expect("connect");

    // Identity handshake: the daemon's binding fingerprint must match
    // the deployment we built locally — proof we're talking to a server
    // that answers exactly our questions.
    let info = client.info().expect("info");
    let hosted = info
        .iter()
        .find(|d| d.name == "survey")
        .expect("daemon hosts 'survey'");
    assert_eq!(
        hosted.binding, binding,
        "binding mismatch: the daemon hosts a different deployment"
    );
    println!(
        "hosted: {} (n = {}, m = {}, ε = {}, binding {:#018x})",
        hosted.name, hosted.domain_size, hosted.num_outputs, hosted.epsilon, hosted.binding
    );

    // Privatize a small population locally and submit it in batches.
    let ldp_client = deployment.client();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let population: Vec<u64> = (0..3000)
        .map(|i| ldp_client.respond(i % 6, &mut rng) as u64)
        .collect();
    for batch in population.chunks(500) {
        let ack = client.submit("survey", batch).expect("submit");
        println!(
            "submitted {} reports ({} pending merge)",
            ack.accepted, ack.pending
        );
    }

    // Ad-hoc questions over the wire.
    for (label, query) in [
        ("color == 0", Query::equals("color", 0)),
        ("size == 1", Query::equals("size", 1)),
        (
            "color ∈ {0, 2} and size == 0",
            Query::values("color", [0, 2]).and_equals("size", 0),
        ),
    ] {
        let a = client.answer("survey", &query).expect("answer");
        println!(
            "{label}: {:.1} ± {:.1} users (from {} reports)",
            a.value, a.stddev, a.reports
        );
    }

    // The full deployed workload in one call.
    let all = client.answers("survey").expect("answers");
    println!(
        "workload answers ({} queries, {} reports): {:?}",
        all.answers.len(),
        all.reports,
        all.answers.iter().map(|a| a.round()).collect::<Vec<_>>()
    );

    // Checkpoint (durable when the daemon has --dir).
    let ack = client.checkpoint("survey").expect("checkpoint");
    println!("checkpoint epoch {} ({} bytes)", ack.epoch, ack.bytes);

    // Only shut down servers we started; an external daemon may have
    // other clients (CI shuts it down explicitly after this example).
    if let Some(handle) = handle {
        client.shutdown().expect("shutdown");
        handle.join().expect("server exit");
        println!("in-process server shut down cleanly");
    }
}
