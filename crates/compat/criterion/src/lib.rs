//! Offline stand-in for the `criterion` benchmark harness, implementing
//! the subset of its API this workspace uses. Benchmarks compile and run
//! with `cargo bench`; each measurement prints mean wall-clock time per
//! iteration over a warmup-calibrated batch. No statistical outlier
//! analysis or HTML reports — see `crates/compat/README.md`.

// A benchmark harness is the sanctioned home of the wall clock.
#![allow(clippy::disallowed_methods)]
use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value barrier, like `criterion::black_box`.
pub use std::hint::black_box;

/// Target measurement time per benchmark, split across samples.
const TARGET_MEASURE: Duration = Duration::from_millis(600);
const WARMUP_ITERS: u64 = 2;

/// The top-level harness handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Measures a single standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f, 20);
        self
    }
}

/// Identifier for one measurement within a group.
#[derive(Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id, `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id consisting only of the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// A group of related measurements sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures `f` with access to a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input), self.sample_size);
        self
    }

    /// Measures a function with no external input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, &mut f, self.sample_size);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Anything usable as a measurement name (a `&str` or a [`BenchmarkId`]).
#[derive(Debug)]
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.label)
    }
}

/// Passed to the measured closure; [`Bencher::iter`] does the timing.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Mean nanoseconds per iteration, filled in by `iter`.
    result_ns: f64,
    iters_run: u64,
}

impl Bencher {
    /// Times `f`, storing the mean wall-clock duration per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: how long does one call take?
        let start = Instant::now();
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let per_call = start.elapsed() / (WARMUP_ITERS as u32);
        // Pick a batch count aiming for TARGET_MEASURE total.
        let budget_per_sample = TARGET_MEASURE / (self.sample_size as u32);
        let batch =
            (budget_per_sample.as_nanos() / per_call.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += t.elapsed();
            iters += batch;
        }
        self.result_ns = total.as_nanos() as f64 / iters as f64;
        self.iters_run = iters;
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher), sample_size: usize) {
    let mut bencher = Bencher {
        sample_size,
        result_ns: f64::NAN,
        iters_run: 0,
    };
    f(&mut bencher);
    if bencher.result_ns.is_nan() {
        println!("{label:<48} (no measurement — Bencher::iter never called)");
        return;
    }
    let ns = bencher.result_ns;
    let human = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    };
    println!(
        "{label:<48} time: {human:>12}/iter  ({} iters)",
        bencher.iters_run
    );
}

/// Collects benchmark functions into one group runner, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        // Bench binaries have no downstream crates, so the generated
        // entry point is always "unreachable" pub.
        #[allow(unreachable_pub)]
        #[doc = "Runs every benchmark in this group."]
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main`, running each group, like upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("compat_smoke");
        group.sample_size(3);
        for &n in &[4usize, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).map(|i| i * i).sum::<usize>());
            });
        }
        group.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn group_runs_and_measures() {
        smoke();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter(64).label, "64");
    }
}
