//! Offline stand-in for the `rand` crate (0.8-style API), implementing
//! exactly the subset this workspace uses. See `crates/compat/README.md`
//! for scope and caveats.
//!
//! The core generator behind [`rngs::StdRng`] is xoshiro256++ seeded via
//! SplitMix64 — a different stream than upstream `rand`'s ChaCha12, but
//! statistically solid for the Monte Carlo tests and simulations here,
//! and fully deterministic for a given seed.

use std::ops::Range;

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// The standard distribution: uniform over a type's natural range
/// (`[0, 1)` for floats).
#[derive(Debug, Clone, Copy)]
pub struct Standard;

/// A distribution that can sample values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A half-open range that uniform values can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u: f64 = Standard.sample(rng);
                let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                // Guard against rounding up to the excluded endpoint.
                if v as $t >= self.end {
                    self.start
                } else {
                    v as $t
                }
            }
        }
    )*};
}
impl_sample_range_float!(f64, f32);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < span/2^64 — negligible for the spans
                // used in this workspace (all far below 2^32).
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draws a value uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Draws a value from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to full
    /// state deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&x));
            let k = rng.gen_range(3usize..17);
            assert!((3..17).contains(&k));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn int_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x: f64 = dynrng.gen();
        assert!((0.0..1.0).contains(&x));
        let k = dynrng.gen_range(0usize..3);
        assert!(k < 3);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
