//! Offline stand-in for the `proptest` crate, implementing the subset of
//! its API this workspace uses: the [`proptest!`] test macro, numeric
//! range strategies, [`collection::vec`], [`Strategy::prop_map`], and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion macros.
//!
//! Differences from upstream (see `crates/compat/README.md`):
//!
//! * **No shrinking.** A failing case panics with the case number and the
//!   stringified assertion; re-running reproduces it exactly because the
//!   generator is seeded from the test's module path and name.
//! * Collection sizes are fixed `usize`s (the only form used here).

use std::ops::Range;

/// Re-exported so the [`proptest!`] macro can name the generator without
/// requiring callers to depend on `rand` themselves.
pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Per-test configuration. Only `cases` is implemented.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F> std::fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Map").finish_non_exhaustive()
    }
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// Tuples of strategies are strategies over tuples, like upstream.
macro_rules! tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 / 0, S1 / 1);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s of exactly `size` elements.
    pub fn vec<S: Strategy>(element: S, size: usize) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: usize,
    }

    impl<S> std::fmt::Debug for VecStrategy<S> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("VecStrategy")
                .field("size", &self.size)
                .finish_non_exhaustive()
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.size).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Stable 64-bit FNV-1a hash of a test's path, used to seed its generator
/// deterministically.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the seeded generator for a named test.
pub fn rng_for(name: &str) -> TestRng {
    TestRng::seed_from_u64(seed_for(name))
}

/// Defines property-based tests. Supports the upstream form
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0.0..1.0f64, k in 2usize..9) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __msg
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err(::std::format!(
                    "assertion failed: {}",
                    stringify!($cond)
                ));
            }
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err(::std::format!($($fmt)+));
            }
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
}

/// Skips the current case (counted as passing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        match $cond {
            true => {}
            false => return ::std::result::Result::Ok(()),
        }
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
        range.prop_map(|x| 2.0 * x)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_vecs(
            x in -1.5..2.5f64,
            k in 3usize..9,
            v in prop::collection::vec(0.0..1.0f64, 7),
        ) {
            prop_assert!((-1.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&k));
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|e| (0.0..1.0).contains(e)), "out of range: {v:?}");
        }

        #[test]
        fn prop_map_applies(y in doubled(1.0..2.0f64)) {
            prop_assert!((2.0..4.0).contains(&y));
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            #[allow(dead_code)]
            fn always_fails(x in 0.0..1.0f64) {
                prop_assert!(x > 2.0, "x was {x}");
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::rng_for("some::test");
        let mut b = crate::rng_for("some::test");
        let sa = (0.0..1.0f64).generate(&mut a);
        let sb = (0.0..1.0f64).generate(&mut b);
        assert_eq!(sa, sb);
    }
}
