//! The Fourier mechanism for marginal release under LDP
//! (Cormode, Kulkarni & Srivastava \[12\]).
//!
//! Over the binary domain `{0,1}^d`, each user samples one character
//! (parity function) `χ_T` uniformly from a support set `F`, evaluates the
//! sign `χ_T(u) ∈ {±1}` on their own type, and reports it through binary
//! randomized response. Outputs are `(T, sign)` pairs; the strategy matrix
//! has `m = 2·|F|` rows.
//!
//! Marginals on a subset `S` decompose into the characters `χ_T`, `T ⊆ S`,
//! so choosing `F` to be all subsets up to the marginal width reproduces
//! the mechanism of \[12\]. With `F` the full power set the mechanism can
//! answer any workload.

use ldp_core::{FactorizationMechanism, LdpError, StrategyMatrix};
use ldp_linalg::{LinOp, Matrix};

/// Builder for the Fourier mechanism's strategy.
#[derive(Clone, Debug)]
pub struct Fourier {
    d: usize,
    support: Vec<usize>,
    epsilon: f64,
}

impl Fourier {
    /// Fourier mechanism with support on all characters of order `0..=k`
    /// — the configuration of Cormode et al. \[12\] for `k`-way marginals.
    ///
    /// # Panics
    /// Panics if `d == 0`, `d > 20`, or `k > d`.
    pub fn up_to(d: usize, k: usize, epsilon: f64) -> Self {
        assert!(k <= d, "character order cannot exceed attribute count");
        let support = (0usize..(1 << d))
            .filter(|s| (s.count_ones() as usize) <= k)
            .collect();
        Self::with_support(d, support, epsilon)
    }

    /// Fourier mechanism on the full character basis (can answer any
    /// workload; `m = 2^{d+1}` outputs).
    pub fn full(d: usize, epsilon: f64) -> Self {
        Self::up_to(d, d, epsilon)
    }

    /// Fourier mechanism with an explicit character support (bitmask set).
    ///
    /// # Panics
    /// Panics if the support is empty, contains an out-of-range mask, or
    /// `epsilon` is invalid.
    pub fn with_support(d: usize, support: Vec<usize>, epsilon: f64) -> Self {
        assert!(d > 0 && d <= 20, "attribute count must be in 1..=20");
        assert!(!support.is_empty(), "support must be non-empty");
        assert!(
            support.iter().all(|&s| s < (1 << d)),
            "support mask out of range"
        );
        assert!(epsilon > 0.0 && epsilon.is_finite(), "invalid epsilon");
        Self {
            d,
            support,
            epsilon,
        }
    }

    /// Domain size `n = 2^d`.
    pub fn domain_size(&self) -> usize {
        1 << self.d
    }

    /// Number of characters in the support.
    pub fn support_size(&self) -> usize {
        self.support.len()
    }

    /// The strategy matrix: rows are `(T, +1)` then `(T, −1)` pairs for
    /// each `T` in support order.
    pub fn strategy(&self) -> StrategyMatrix {
        let n = self.domain_size();
        let f = self.support.len() as f64;
        let e = self.epsilon.exp();
        let p_true = e / (e + 1.0) / f;
        let p_false = 1.0 / (e + 1.0) / f;
        let mut q = Matrix::zeros(2 * self.support.len(), n);
        for (t_idx, &t) in self.support.iter().enumerate() {
            for u in 0..n {
                let chi_positive = (u & t).count_ones() % 2 == 0;
                let (p_plus, p_minus) = if chi_positive {
                    (p_true, p_false)
                } else {
                    (p_false, p_true)
                };
                q[(2 * t_idx, u)] = p_plus;
                q[(2 * t_idx + 1, u)] = p_minus;
            }
        }
        // ldp-lint: allow(no-unwrap-in-lib) -- invariant: each column splits
        // mass p₊/p₋ over paired outputs summing to 1 by construction.
        StrategyMatrix::new(q).expect("Fourier strategy is always valid")
    }

    /// Builds the mechanism for the workload with Gram matrix `gram`.
    ///
    /// # Errors
    /// [`LdpError::WorkloadNotSupported`] if the workload needs characters
    /// outside the support; other construction errors propagate.
    pub fn mechanism(&self, gram: &dyn LinOp) -> Result<FactorizationMechanism, LdpError> {
        Ok(
            FactorizationMechanism::new_unchecked_privacy(self.strategy(), gram, self.epsilon)?
                .with_name("Fourier"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::{DataVector, LdpMechanism};
    use ldp_workloads::{KWayMarginals, Parity, Workload};

    #[test]
    fn strategy_shape_and_budget() {
        let f = Fourier::up_to(4, 2, 1.0);
        // |F| = 1 + 4 + 6 = 11 characters, m = 22.
        assert_eq!(f.support_size(), 11);
        let s = f.strategy();
        assert_eq!(s.num_outputs(), 22);
        assert!((s.epsilon() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn answers_matching_marginals_workload() {
        let d = 4;
        let w = KWayMarginals::new(d, 2);
        let gram = w.gram();
        let mech = Fourier::up_to(d, 2, 1.0).mechanism(&gram).unwrap();
        // Unbiasedness on workload answers: W K Q x = W x.
        let data = DataVector::from_counts((0..16).map(|i| ((i * 5 + 2) % 7) as f64).collect());
        let ey = mech.expected_responses(&data);
        let xhat = mech.reconstruction().matvec(&ey);
        let answers_est = w.evaluate(&xhat);
        let answers_true = w.evaluate(data.counts());
        for (a, b) in answers_est.iter().zip(&answers_true) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_workload_outside_support() {
        // Characters of order <= 1 cannot answer 2-way marginals.
        let d = 3;
        let w = KWayMarginals::new(d, 2);
        let result = Fourier::up_to(d, 1, 1.0).mechanism(&w.gram());
        assert!(matches!(result, Err(LdpError::WorkloadNotSupported { .. })));
    }

    #[test]
    fn full_support_answers_histogram() {
        let d = 3;
        let gram = Matrix::identity(8);
        let mech = Fourier::full(d, 1.0).mechanism(&gram).unwrap();
        assert_eq!(mech.domain_size(), 8);
    }

    #[test]
    fn tailored_fourier_beats_rr_on_parity() {
        use crate::randomized_response::randomized_response;
        let d = 6;
        let w = Parity::up_to(d, 3);
        let gram = w.gram();
        let n = w.domain_size();
        let fourier = Fourier::up_to(d, 3, 1.0).mechanism(&gram).unwrap();
        let rr = randomized_response(n, 1.0, &gram).unwrap();
        let sc_f = fourier.sample_complexity(&gram, w.num_queries(), 0.01);
        let sc_r = rr.sample_complexity(&gram, w.num_queries(), 0.01);
        assert!(
            sc_f < sc_r,
            "Fourier {sc_f} should beat RR {sc_r} on Parity"
        );
    }
}
