//! (Basic one-time) RAPPOR (Erlingsson, Pihur & Korolova \[18\]; Table 1).
//!
//! Each user perturbs the one-hot encoding of their type, flipping every
//! bit independently with probability `1/(e^{ε/2}+1)`. The output range is
//! all of `{0,1}^n`, so the strategy matrix has `m = 2^n` rows:
//!
//! ```text
//! Q[o, u] ∝ exp(ε/2)^{n − ‖o − e_u‖₁}
//! ```
//!
//! The paper excludes RAPPOR from its experiments for exactly this
//! exponential blow-up (Section 6.1); it is implemented here for
//! completeness of Table 1 and for small-domain validation, with a guard
//! at `n ≤ 14`.

use ldp_core::{FactorizationMechanism, LdpError, StrategyMatrix};
use ldp_linalg::{LinOp, Matrix};

/// Largest domain for which the `2^n × n` strategy is materialized.
pub const MAX_DOMAIN: usize = 14;

/// The RAPPOR strategy matrix (`2^n × n`). Output bitmask `o` has bit `v`
/// set iff the reported Bloom-style bit `v` is 1.
///
/// # Panics
/// Panics if `n == 0`, `n > MAX_DOMAIN`, or `epsilon` is invalid.
pub fn rappor_strategy(n: usize, epsilon: f64) -> StrategyMatrix {
    assert!(
        n > 0 && n <= MAX_DOMAIN,
        "RAPPOR strategy needs 1 <= n <= {MAX_DOMAIN}"
    );
    assert!(epsilon > 0.0 && epsilon.is_finite(), "invalid epsilon");
    let m = 1usize << n;
    // Per-bit keep probability p = e^{ε/2}/(e^{ε/2}+1); flip prob 1−p.
    // Q[o,u] = p^{n−h}(1−p)^{h} with h = ‖o − e_u‖₁ = hamming(o, 1<<u).
    let half = (epsilon / 2.0).exp();
    let keep = half / (half + 1.0);
    let flip = 1.0 - keep;
    let q = Matrix::from_fn(m, n, |o, u| {
        let h = (o ^ (1usize << u)).count_ones() as i32;
        keep.powi(n as i32 - h) * flip.powi(h)
    });
    // ldp-lint: allow(no-unwrap-in-lib) -- invariant: each column is a
    // product of per-bit Bernoulli distributions, stochastic by construction.
    StrategyMatrix::new(q).expect("RAPPOR strategy is always valid")
}

/// RAPPOR as a factorization mechanism for the workload with Gram matrix
/// `gram`.
///
/// # Errors
/// Propagates construction errors; the strategy has full column rank so
/// any workload is supported.
pub fn rappor(
    n: usize,
    epsilon: f64,
    gram: &dyn LinOp,
) -> Result<FactorizationMechanism, LdpError> {
    let strategy = rappor_strategy(n, epsilon);
    Ok(FactorizationMechanism::new_unchecked_privacy(strategy, gram, epsilon)?.with_name("RAPPOR"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::{DataVector, LdpMechanism};

    #[test]
    fn table1_proportionality() {
        // Table 1: Q[o,u] ∝ exp(ε/2)^{n − ‖o − e_u‖₁}.
        let (n, eps) = (4usize, 1.0);
        let s = rappor_strategy(n, eps);
        let q = s.matrix();
        let base = (eps / 2.0).exp();
        // Compare the ratio of two outputs for one user against the
        // closed-form exponent difference.
        let u = 2usize;
        let o1 = 1usize << u; // exact one-hot: distance 0
        let o2 = 0usize; // distance 1
        let ratio = q[(o1, u)] / q[(o2, u)];
        assert!((ratio - base).abs() < 1e-12);
    }

    #[test]
    fn columns_sum_to_one() {
        let s = rappor_strategy(5, 0.8);
        // StrategyMatrix::new already validates; spot-check anyway.
        let sums = s.matrix().col_sums();
        for c in sums {
            assert!((c - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn satisfies_epsilon_exactly() {
        for eps in [0.5, 1.0, 2.0] {
            let s = rappor_strategy(4, eps);
            // Max ratio between columns: distance differs by at most 2 bits
            // -> exp(2·ε/2) = e^ε.
            assert!((s.epsilon() - eps).abs() < 1e-10);
        }
    }

    #[test]
    fn unbiased_estimation() {
        let n = 4;
        let gram = Matrix::identity(n);
        let mech = rappor(n, 1.0, &gram).unwrap();
        let data = DataVector::from_counts(vec![3.0, 1.0, 4.0, 1.0]);
        let ey = mech.expected_responses(&data);
        let xhat = mech.reconstruction().matvec(&ey);
        for (a, b) in xhat.iter().zip(data.counts()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn comparable_to_hadamard_on_histogram() {
        // Acharya et al. [2] report RAPPOR and Hadamard response are within
        // constants on Histogram; check they're in the same ballpark.
        use crate::hadamard::hadamard_response;
        let n = 8;
        let gram = Matrix::identity(n);
        let rap = rappor(n, 1.0, &gram).unwrap();
        let had = hadamard_response(n, 1.0, &gram).unwrap();
        let sc_rap = rap.sample_complexity(&gram, n, 0.01);
        let sc_had = had.sample_complexity(&gram, n, 0.01);
        let ratio = sc_rap / sc_had;
        assert!(
            (0.2..5.0).contains(&ratio),
            "RAPPOR {sc_rap} vs Hadamard {sc_had}"
        );
    }

    #[test]
    #[should_panic(expected = "RAPPOR strategy needs")]
    fn guards_exponential_blowup() {
        let _ = rappor_strategy(20, 1.0);
    }
}
