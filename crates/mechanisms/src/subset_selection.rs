//! Subset selection (Ye & Barg \[45\]; Table 1 of the paper).
//!
//! Each user reports a size-`d` subset of the domain; the probability is
//! proportional to `e^ε` when the user's own type is inside the reported
//! subset and `1` otherwise. Ye & Barg show this family is asymptotically
//! optimal for distribution estimation with `d ≈ n/(e^ε+1)`.
//!
//! The output range has `C(n, d)` elements, so — like RAPPOR — the paper
//! excludes it from large-scale experiments; we materialize it for small
//! `n` to validate Table 1 and to use in unit comparisons.

use ldp_core::{FactorizationMechanism, LdpError, StrategyMatrix};
use ldp_linalg::{LinOp, Matrix};
use ldp_workloads::binomial;

/// Guard on `C(n,d)`: the strategy matrix must stay comfortably dense.
const MAX_OUTPUTS: usize = 1 << 16;

/// The recommended subset size `d = max(1, round(n / (e^ε + 1)))` from
/// Ye & Barg's analysis.
pub fn recommended_subset_size(n: usize, epsilon: f64) -> usize {
    let d = (n as f64 / (epsilon.exp() + 1.0)).round() as usize;
    d.clamp(1, n)
}

/// The subset-selection strategy matrix with subset size `d`
/// (`m = C(n, d)` outputs, enumerated in lexicographic bitmask order).
///
/// # Panics
/// Panics if `d` is 0 or ≥ n (degenerate — every or no subset contains
/// every user), if `C(n,d)` exceeds an internal guard, or if `epsilon` is
/// invalid.
pub fn subset_selection_strategy(n: usize, d: usize, epsilon: f64) -> StrategyMatrix {
    assert!(n >= 2, "domain must have at least two types");
    assert!(d >= 1 && d < n, "subset size must be in 1..n");
    assert!(epsilon > 0.0 && epsilon.is_finite(), "invalid epsilon");
    let m = binomial(n, d) as usize;
    assert!(
        m <= MAX_OUTPUTS,
        "C({n},{d}) = {m} outputs is too large to materialize"
    );

    // Enumerate all size-d bitmask subsets of [n].
    let subsets: Vec<usize> = (0usize..(1 << n))
        .filter(|s| s.count_ones() as usize == d)
        .collect();
    debug_assert_eq!(subsets.len(), m);

    let e = epsilon.exp();
    // Column normalizer: subsets containing u: C(n-1, d-1); others:
    // C(n-1, d). Z = e·C(n-1,d-1) + C(n-1,d).
    let z = e * binomial(n - 1, d - 1) + binomial(n - 1, d);
    let mut q = Matrix::zeros(m, n);
    for (row, &s) in subsets.iter().enumerate() {
        for u in 0..n {
            q[(row, u)] = if s >> u & 1 == 1 { e / z } else { 1.0 / z };
        }
    }
    // ldp-lint: allow(no-unwrap-in-lib) -- invariant: each column weights
    // subsets by e^ε/z or 1/z with z normalizing over all subsets.
    StrategyMatrix::new(q).expect("subset selection is always a valid strategy")
}

/// Subset selection (with the recommended subset size) as a factorization
/// mechanism for the workload with Gram matrix `gram`.
///
/// # Errors
/// Propagates construction errors; the strategy has full column rank so
/// any workload is supported.
pub fn subset_selection(
    n: usize,
    epsilon: f64,
    gram: &dyn LinOp,
) -> Result<FactorizationMechanism, LdpError> {
    let d = recommended_subset_size(n, epsilon);
    // Degenerate d == n would make every output equally likely; back off.
    let d = d.min(n - 1);
    let strategy = subset_selection_strategy(n, d, epsilon);
    Ok(
        FactorizationMechanism::new_unchecked_privacy(strategy, gram, epsilon)?
            .with_name("Subset Selection"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::{DataVector, LdpMechanism};

    #[test]
    fn table1_structure() {
        // Table 1 row 4: o ∈ {0,1}^n with ‖o‖₁ = d; Q ∝ e^ε iff o_u = 1.
        let s = subset_selection_strategy(5, 2, 1.0);
        assert_eq!(s.num_outputs(), 10); // C(5,2)
        assert!((s.epsilon() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn recommended_size_shrinks_with_epsilon() {
        assert!(recommended_subset_size(20, 0.5) > recommended_subset_size(20, 3.0));
        assert_eq!(recommended_subset_size(4, 10.0), 1);
    }

    #[test]
    fn unbiased_estimation() {
        let n = 6;
        let gram = Matrix::identity(n);
        let mech = subset_selection(n, 1.0, &gram).unwrap();
        let data = DataVector::from_counts(vec![2.0, 7.0, 1.0, 8.0, 2.0, 8.0]);
        let ey = mech.expected_responses(&data);
        let xhat = mech.reconstruction().matvec(&ey);
        for (a, b) in xhat.iter().zip(data.counts()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn competitive_with_hadamard_on_histogram() {
        use crate::hadamard::hadamard_response;
        let n = 8;
        let gram = Matrix::identity(n);
        let ss = subset_selection(n, 1.0, &gram).unwrap();
        let had = hadamard_response(n, 1.0, &gram).unwrap();
        let sc_ss = ss.sample_complexity(&gram, n, 0.01);
        let sc_had = had.sample_complexity(&gram, n, 0.01);
        let ratio = sc_ss / sc_had;
        assert!(
            (0.2..5.0).contains(&ratio),
            "SS {sc_ss} vs Hadamard {sc_had}"
        );
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn guards_combinatorial_blowup() {
        let _ = subset_selection_strategy(40, 20, 1.0);
    }
}
