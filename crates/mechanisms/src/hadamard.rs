//! Hadamard response (Acharya, Sun & Zhang \[2\]; Table 1 of the paper).
//!
//! Let `K = 2^⌈log₂(n+1)⌉` and let `H` be the `K × K` Sylvester–Hadamard
//! matrix, `H[i,j] = (−1)^{popcount(i & j)}`. User `u` is associated with
//! Hadamard index `u + 1` (index 0 is the all-ones row, which carries no
//! information). The user reports output `o ∈ [K]` with probability
//! proportional to `e^ε` when `H[o, u+1] = +1` and `1` otherwise.

use ldp_core::{FactorizationMechanism, LdpError, StrategyMatrix};
use ldp_linalg::{LinOp, Matrix};

/// Entry of the Sylvester–Hadamard matrix of any power-of-two order:
/// `H[i,j] = (−1)^{popcount(i & j)}`.
#[inline]
pub fn hadamard_entry(i: usize, j: usize) -> f64 {
    if (i & j).count_ones().is_multiple_of(2) {
        1.0
    } else {
        -1.0
    }
}

/// The Hadamard response strategy matrix for domain size `n` at budget
/// `epsilon` (`m = 2^⌈log₂(n+1)⌉` outputs).
pub fn hadamard_strategy(n: usize, epsilon: f64) -> StrategyMatrix {
    assert!(n > 0, "domain must be non-empty");
    assert!(epsilon > 0.0 && epsilon.is_finite(), "invalid epsilon");
    let k = (n + 1).next_power_of_two();
    let e = epsilon.exp();
    // Each non-zero Hadamard column has exactly K/2 entries equal to +1,
    // so every column normalizer is (K/2)(e^ε + 1).
    let z = (k as f64 / 2.0) * (e + 1.0);
    StrategyMatrix::new(Matrix::from_fn(k, n, |o, u| {
        if hadamard_entry(o, u + 1) > 0.0 {
            e / z
        } else {
            1.0 / z
        }
    }))
    // ldp-lint: allow(no-unwrap-in-lib) -- invariant: entries are e^ε/z and
    // 1/z with z = (e^ε + 1)·n/2, stochastic by construction.
    .expect("Hadamard response is always a valid strategy")
}

/// Hadamard response as a factorization mechanism for the workload with
/// Gram matrix `gram` (reconstruction per Theorem 3.10).
///
/// # Errors
/// Propagates [`LdpError`] from mechanism construction. The strategy has
/// full column rank, so any workload is supported.
pub fn hadamard_response(
    n: usize,
    epsilon: f64,
    gram: &dyn LinOp,
) -> Result<FactorizationMechanism, LdpError> {
    let strategy = hadamard_strategy(n, epsilon);
    Ok(
        FactorizationMechanism::new_unchecked_privacy(strategy, gram, epsilon)?
            .with_name("Hadamard"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::{DataVector, LdpMechanism};

    #[test]
    fn sylvester_recursion_holds() {
        // H_{2K} = [[H, H], [H, −H]] — check via the bit formula.
        let k = 4;
        for i in 0..k {
            for j in 0..k {
                assert_eq!(hadamard_entry(i, j), hadamard_entry(i + k, j));
                assert_eq!(hadamard_entry(i, j), hadamard_entry(i, j + k));
                assert_eq!(hadamard_entry(i, j), -hadamard_entry(i + k, j + k));
            }
        }
    }

    #[test]
    fn hadamard_rows_orthogonal() {
        let k = 8;
        for i in 0..k {
            for j in 0..k {
                let dot: f64 = (0..k)
                    .map(|c| hadamard_entry(i, c) * hadamard_entry(j, c))
                    .sum();
                assert_eq!(dot, if i == j { k as f64 } else { 0.0 });
            }
        }
    }

    #[test]
    fn table1_output_count() {
        // Table 1: output range is [K], K = 2^⌈log₂(n+1)⌉.
        assert_eq!(hadamard_strategy(5, 1.0).num_outputs(), 8);
        assert_eq!(hadamard_strategy(7, 1.0).num_outputs(), 8);
        assert_eq!(hadamard_strategy(8, 1.0).num_outputs(), 16);
    }

    #[test]
    fn strategy_satisfies_epsilon() {
        for eps in [0.5, 1.0, 3.0] {
            let s = hadamard_strategy(6, eps);
            assert!((s.epsilon() - eps).abs() < 1e-10);
        }
    }

    #[test]
    fn unbiased_estimation() {
        let n = 5;
        let gram = Matrix::identity(n);
        let mech = hadamard_response(n, 1.0, &gram).unwrap();
        let data = DataVector::from_counts(vec![9.0, 1.0, 4.0, 0.0, 6.0]);
        let ey = mech.expected_responses(&data);
        let xhat = mech.reconstruction().matvec(&ey);
        for (a, b) in xhat.iter().zip(data.counts()) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn beats_randomized_response_on_histogram_at_moderate_n() {
        // The headline property of Hadamard response: sample complexity on
        // Histogram does not grow with n, unlike randomized response.
        use crate::randomized_response::randomized_response;
        let eps = 1.0;
        let n = 64;
        let gram = Matrix::identity(n);
        let had = hadamard_response(n, eps, &gram).unwrap();
        let rr = randomized_response(n, eps, &gram).unwrap();
        let sc_had = had.sample_complexity(&gram, n, 0.01);
        let sc_rr = rr.sample_complexity(&gram, n, 0.01);
        assert!(
            sc_had < sc_rr,
            "Hadamard ({sc_had}) should beat RR ({sc_rr}) at n=64"
        );
    }
}
