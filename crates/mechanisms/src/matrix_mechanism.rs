//! The "distributed" / local Matrix Mechanism (Edmonds, Nikolov & Ullman
//! \[17\]; Li et al. \[27\] for the central original).
//!
//! Unlike every other mechanism in this crate, the local Matrix Mechanism
//! is a *noise addition* mechanism, not a strategy-matrix (conditional
//! probability) mechanism: each user reports `A·e_u + η` where `A` is an
//! `r × n` strategy-query matrix and `η` is i.i.d. per-coordinate Laplace
//! noise calibrated to the sensitivity of `A`:
//!
//! * **L1 calibration** — Laplace noise at scale `Δ₁(A)/ε`, where `Δ₁`
//!   is the largest pairwise L1 distance between columns of `A`
//!   (pure ε-LDP).
//! * **L2 calibration** — Gaussian noise at
//!   `σ = Δ₂(A)·√(2·ln(1.25/δ))/ε` with the pairwise L2 diameter `Δ₂`
//!   and `δ = 10⁻⁹`, the analytic-Gaussian-style calibration the paper's
//!   reference \[17\] uses under (ε, δ)-LDP (see DESIGN.md §4).
//!
//! The aggregate `ȳ = Ax + Ση` is post-processed into `x̂ = A†ȳ`, giving
//! workload answers `Wx̂` with total variance `N·2(Δ/ε)²·‖WA†‖²_F`. The
//! strategy `A` is optimized per workload by projected gradient descent on
//! `tr[X⁻¹G]`, `X = AᵀA` — the same objective the central Matrix Mechanism
//! minimizes, subject to the sensitivity normalization.

use ldp_core::{DataVector, LdpMechanism};
use ldp_linalg::{dense_of, eigh_auto, linop_matmul, pinv_symmetric, LinOp, Matrix, PinvOptions};
use rand::{Rng, RngCore};

/// The `δ` used by the L2 (Gaussian) calibration.
pub const GAUSSIAN_DELTA: f64 = 1e-9;

/// Which norm the noise is calibrated to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Calibration {
    /// Laplace noise at scale `Δ₁(A)/ε` (pure ε-LDP).
    L1,
    /// Gaussian noise at `σ = Δ₂(A)·√(2 ln(1.25/δ))/ε`
    /// ((ε, δ)-LDP with δ = [`GAUSSIAN_DELTA`]).
    L2,
}

impl Calibration {
    fn label(self) -> &'static str {
        match self {
            Calibration::L1 => "Matrix Mechanism (L1)",
            Calibration::L2 => "Matrix Mechanism (L2)",
        }
    }
}

/// The local Matrix Mechanism with a workload-optimized strategy.
#[derive(Clone, Debug)]
pub struct LocalMatrixMechanism {
    a: Matrix,
    a_pinv: Matrix,
    sensitivity: f64,
    epsilon: f64,
    calibration: Calibration,
}

impl LocalMatrixMechanism {
    /// Optimizes a strategy for the workload with Gram matrix `gram` and
    /// builds the mechanism. `iterations` controls the projected-gradient
    /// budget (≈100 suffices; the objective is smooth and the paper's
    /// figures are insensitive to the exact optimum).
    ///
    /// # Panics
    /// Panics if `gram` is not square or `epsilon` is invalid.
    pub fn optimized(
        gram: &dyn LinOp,
        epsilon: f64,
        calibration: Calibration,
        iterations: usize,
    ) -> Self {
        assert!(gram.is_square(), "Gram matrix must be square");
        assert!(epsilon > 0.0 && epsilon.is_finite(), "invalid epsilon");
        // The spectral strategy optimization is inherently dense;
        // materialize structured Grams once (construction-time cold path).
        let x = optimize_gram_strategy(dense_of(gram).as_ref(), iterations);
        // A = X^{1/2} (r = n rows).
        let a = eigh_auto(&x).apply_spectral(|l| l.max(0.0).sqrt());
        Self::with_strategy(a, epsilon, calibration)
    }

    /// Builds the mechanism from an explicit strategy matrix `A` (`r × n`).
    ///
    /// # Panics
    /// Panics if `A` has fewer rows than needed to, or its columns are all
    /// identical (zero sensitivity — the mechanism would carry no
    /// information).
    pub fn with_strategy(a: Matrix, epsilon: f64, calibration: Calibration) -> Self {
        assert!(epsilon > 0.0 && epsilon.is_finite(), "invalid epsilon");
        let sensitivity = column_diameter(&a, calibration);
        assert!(
            sensitivity > 0.0,
            "strategy columns are identical; mechanism carries no information"
        );
        let a_pinv = a.pinv();
        Self {
            a,
            a_pinv,
            sensitivity,
            epsilon,
            calibration,
        }
    }

    /// The strategy-query matrix `A`.
    pub fn strategy(&self) -> &Matrix {
        &self.a
    }

    /// The sensitivity `Δ(A)` under this calibration.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The per-coordinate noise parameter: Laplace scale `b = Δ₁/ε` for
    /// L1, Gaussian standard deviation `σ = Δ₂·√(2 ln(1.25/δ))/ε` for L2.
    pub fn noise_scale(&self) -> f64 {
        match self.calibration {
            Calibration::L1 => self.sensitivity / self.epsilon,
            Calibration::L2 => {
                self.sensitivity * (2.0 * (1.25 / GAUSSIAN_DELTA).ln()).sqrt() / self.epsilon
            }
        }
    }

    /// The variance of one noise coordinate: `2b²` (Laplace) or `σ²`
    /// (Gaussian).
    pub fn per_coordinate_variance(&self) -> f64 {
        let s = self.noise_scale();
        match self.calibration {
            Calibration::L1 => 2.0 * s * s,
            Calibration::L2 => s * s,
        }
    }
}

impl LdpMechanism for LocalMatrixMechanism {
    fn name(&self) -> String {
        self.calibration.label().to_string()
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn domain_size(&self) -> usize {
        self.a.cols()
    }

    fn variance_profile(&self, gram: &dyn LinOp) -> Vec<f64> {
        // Each user contributes r coordinates of noise with per-coordinate
        // variance v; the estimator maps it through WA†, so per-user
        // variance is v·‖WA†‖²_F = v·tr(A†ᵀ G A†), identical per type.
        let v = self.per_coordinate_variance();
        let p = linop_matmul(gram, &self.a_pinv); // n × r
        let trace_term: f64 = self
            .a_pinv
            .as_slice()
            .iter()
            .zip(p.as_slice())
            .map(|(x, y)| x * y)
            .sum();
        vec![v * trace_term; self.a.cols()]
    }

    fn run(&self, data: &DataVector, rng: &mut dyn RngCore) -> Vec<f64> {
        assert_eq!(data.domain_size(), self.a.cols());
        let r = self.a.rows();
        let scale = self.noise_scale();
        // ȳ = A x + Σ_users η; the per-coordinate total noise is the sum
        // of N independent draws.
        let mut y = self.a.matvec(data.counts());
        let n_users = data.total().round() as u64;
        for coord in y.iter_mut().take(r) {
            match self.calibration {
                Calibration::L1 => {
                    for _ in 0..n_users {
                        *coord += laplace(scale, rng);
                    }
                }
                Calibration::L2 => {
                    for _ in 0..n_users {
                        *coord += gaussian(scale, rng);
                    }
                }
            }
        }
        self.a_pinv.matvec(&y)
    }
}

/// Draws one Laplace(0, scale) sample by inverse CDF.
fn laplace(scale: f64, rng: &mut dyn RngCore) -> f64 {
    let u: f64 = rng.gen_range(-0.5..0.5);
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Draws one Gaussian(0, sigma²) sample by Box–Muller.
fn gaussian(sigma: f64, rng: &mut dyn RngCore) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Largest pairwise distance between columns of `A` in the calibration
/// norm. For L2 this is computed through the Gram of `A` for speed.
fn column_diameter(a: &Matrix, calibration: Calibration) -> f64 {
    let n = a.cols();
    match calibration {
        Calibration::L2 => {
            let x = a.gram();
            let mut best = 0.0_f64;
            for u in 0..n {
                for v in (u + 1)..n {
                    let d2 = x[(u, u)] + x[(v, v)] - 2.0 * x[(u, v)];
                    best = best.max(d2.max(0.0));
                }
            }
            best.sqrt()
        }
        Calibration::L1 => {
            let mut best = 0.0_f64;
            let cols: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
            for u in 0..n {
                for v in (u + 1)..n {
                    let d: f64 = cols[u]
                        .iter()
                        .zip(&cols[v])
                        .map(|(x, y)| (x - y).abs())
                        .sum();
                    best = best.max(d);
                }
            }
            best
        }
    }
}

/// Minimizes `tr[X⁻¹G]` over symmetric PSD `X` with `diag(X) ≤ 1` by
/// projected gradient with backtracking. This is the classical central-MM
/// strategy optimization whose optimum is characterized by the SVD bound
/// `tr[X⁻¹G] ≥ (Σλ_i)²/n` (Li & Miklau \[29\]); the sensitivity
/// normalization `diag(X) ≤ 1` makes the objective scale-invariant.
fn optimize_gram_strategy(gram: &Matrix, iterations: usize) -> Matrix {
    let n = gram.rows();
    // Ridge keeps X invertible throughout (G may be rank-deficient).
    let ridge = 1e-8 * gram.trace().max(1.0) / n as f64;
    let mut g = gram.clone();
    for i in 0..n {
        g[(i, i)] += ridge;
    }

    // Init: X ∝ G^{1/2}, normalized to max diagonal 1 — exactly optimal
    // when diag(G^{1/2}) is constant (e.g. Histogram, Parity).
    let mut x = eigh_auto(&g).apply_spectral(|l| l.max(0.0).sqrt());
    project_feasible(&mut x, n);

    let mut objective = trace_x_inv_g(&x, &g);
    let mut step = 1.0 / n as f64;
    for _ in 0..iterations {
        let x_inv = pinv_symmetric(&x, PinvOptions::default_for_dim(n)).pinv;
        // ∇ tr[X⁻¹G] = −X⁻¹ G X⁻¹.
        let grad = -&x_inv.matmul(&g.matmul(&x_inv));
        let mut improved = false;
        for _ in 0..20 {
            let mut candidate = &x - &grad.scaled(step);
            project_feasible(&mut candidate, n);
            let cand_obj = trace_x_inv_g(&candidate, &g);
            if cand_obj < objective {
                x = candidate;
                objective = cand_obj;
                step *= 1.5;
                improved = true;
                break;
            }
            step *= 0.5;
        }
        if !improved {
            break;
        }
    }
    x
}

/// Projects onto {PSD with min eigenvalue ≥ tiny} then rescales so
/// `max_u X[u,u] = 1` (a feasible map into the constraint set; scaling a
/// PSD matrix preserves PSD and the objective is scale-covariant).
fn project_feasible(x: &mut Matrix, n: usize) {
    x.symmetrize();
    let e = eigh_auto(x);
    let floor = 1e-10 * e.spectral_radius().max(1e-300);
    *x = e.apply_spectral(|l| l.max(floor));
    let max_diag = (0..n).map(|i| x[(i, i)]).fold(f64::MIN, f64::max);
    if max_diag > 0.0 {
        x.scale_mut(1.0 / max_diag);
    }
}

/// Evaluates `tr[X⁻¹G]` (via the symmetric pseudo-inverse for robustness).
fn trace_x_inv_g(x: &Matrix, g: &Matrix) -> f64 {
    let p = pinv_symmetric(x, PinvOptions::default_for_dim(x.rows())).pinv;
    p.as_slice()
        .iter()
        .zip(g.as_slice())
        .map(|(a, b)| a * b)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::bounds::svd_bound_objective;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn prefix_gram(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |j, k| (n - j.max(k)) as f64)
    }

    #[test]
    fn profile_is_constant_across_types() {
        let gram = Matrix::identity(8);
        let mm = LocalMatrixMechanism::optimized(&gram, 1.0, Calibration::L2, 30);
        let p = mm.variance_profile(&gram);
        for t in &p {
            assert!((t - p[0]).abs() < 1e-9 * p[0]);
        }
    }

    #[test]
    fn variance_decays_quadratically_in_epsilon() {
        let gram = Matrix::identity(6);
        let a = Matrix::identity(6);
        for calibration in [Calibration::L1, Calibration::L2] {
            let mm1 = LocalMatrixMechanism::with_strategy(a.clone(), 1.0, calibration);
            let mm2 = LocalMatrixMechanism::with_strategy(a.clone(), 2.0, calibration);
            let v1 = mm1.variance_profile(&gram)[0];
            let v2 = mm2.variance_profile(&gram)[0];
            assert!((v1 / v2 - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn l2_gaussian_calibration_constant() {
        // σ = Δ₂·√(2 ln(1.25/δ))/ε; per-coordinate variance σ².
        let a = Matrix::identity(4);
        let eps = 1.0;
        let mm = LocalMatrixMechanism::with_strategy(a, eps, Calibration::L2);
        let delta2 = 2.0_f64.sqrt();
        let sigma = delta2 * (2.0 * (1.25 / GAUSSIAN_DELTA).ln()).sqrt() / eps;
        assert!((mm.noise_scale() - sigma).abs() < 1e-12);
        assert!((mm.per_coordinate_variance() - sigma * sigma).abs() < 1e-9);
        // The Gaussian calibration is substantially noisier than a naive
        // √2 Laplace at the same Δ — the property that keeps MM(L2) from
        // spuriously dominating pure ε-LDP mechanisms in Figure 1.
        assert!(mm.per_coordinate_variance() > 10.0 * 2.0 * (delta2 / eps).powi(2));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let sigma = 2.0;
        let n = 200_000;
        let (mut mean, mut var) = (0.0, 0.0);
        for _ in 0..n {
            let v = gaussian(sigma, &mut rng);
            mean += v;
            var += v * v;
        }
        mean /= n as f64;
        var /= n as f64;
        assert!(mean.abs() < 0.02, "gaussian mean {mean}");
        assert!((var - sigma * sigma).abs() < 0.1, "gaussian var {var}");
    }

    #[test]
    fn identity_strategy_known_variance() {
        // A = I: Δ₁ = 2 (pairwise one-hot distance... columns e_u differ in
        // 2 coords), Δ₂ = √2; tr(G) for G = I is n.
        let n = 5;
        let gram = Matrix::identity(n);
        let a = Matrix::identity(n);
        let eps = 1.0;
        let l1 = LocalMatrixMechanism::with_strategy(a.clone(), eps, Calibration::L1);
        assert!((l1.sensitivity() - 2.0).abs() < 1e-12);
        let v = l1.variance_profile(&gram)[0];
        assert!((v - 2.0 * (2.0 / eps).powi(2) * n as f64).abs() < 1e-9);
        let l2 = LocalMatrixMechanism::with_strategy(a, eps, Calibration::L2);
        assert!((l2.sensitivity() - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn optimizer_respects_svd_bound_and_gets_close_on_histogram() {
        // tr[X⁻¹G] ≥ (Σλ)²/n; for G = I with diag(G^{1/2}) constant the
        // init is exactly optimal: tr = n = (Σλ)²/n.
        let n = 8;
        let gram = Matrix::identity(n);
        let x = optimize_gram_strategy(&gram, 50);
        let obj = trace_x_inv_g(&x, &gram);
        let bound = n as f64;
        assert!(obj >= bound - 1e-6);
        assert!(
            obj <= bound * 1.01,
            "objective {obj} far from bound {bound}"
        );
    }

    #[test]
    fn optimizer_improves_over_identity_on_prefix() {
        let n = 16;
        let gram = prefix_gram(n);
        let x_opt = optimize_gram_strategy(&gram, 60);
        let obj_opt = trace_x_inv_g(&x_opt, &gram);
        let obj_id = trace_x_inv_g(&Matrix::identity(n), &gram);
        assert!(obj_opt < obj_id, "{obj_opt} !< {obj_id}");
        // And never below the SVD bound (sanity of both pieces).
        let bound = svd_bound_objective(&gram, 0.0_f64.max(1e-12));
        // svd_bound_objective divides by e^ε; at ε→0 it is (Σλ)²; compare
        // against (Σλ)²/n scaled accordingly: tr bound = (Σλ)²/n.
        assert!(obj_opt >= bound / n as f64 - 1e-6);
    }

    #[test]
    fn run_is_unbiased_on_average() {
        let n = 4;
        let gram = Matrix::identity(n);
        let mm = LocalMatrixMechanism::optimized(&gram, 2.0, Calibration::L1, 20);
        let data = DataVector::from_counts(vec![40.0, 10.0, 30.0, 20.0]);
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 300;
        let mut mean = vec![0.0; n];
        for _ in 0..trials {
            let xhat = mm.run(&data, &mut rng);
            for (m, v) in mean.iter_mut().zip(&xhat) {
                *m += v / trials as f64;
            }
        }
        for (m, x) in mean.iter().zip(data.counts()) {
            assert!((m - x).abs() < 12.0, "mean {m} vs true {x}");
        }
    }

    #[test]
    fn laplace_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = 1.5;
        let n = 200_000;
        let (mut mean, mut var) = (0.0, 0.0);
        for _ in 0..n {
            let v = laplace(b, &mut rng);
            mean += v;
            var += v * v;
        }
        mean /= n as f64;
        var /= n as f64;
        assert!(mean.abs() < 0.02, "laplace mean {mean}");
        assert!((var - 2.0 * b * b).abs() < 0.1, "laplace var {var}");
    }

    #[test]
    fn names_follow_paper_figures() {
        let gram = Matrix::identity(3);
        let l1 = LocalMatrixMechanism::optimized(&gram, 1.0, Calibration::L1, 5);
        assert_eq!(l1.name(), "Matrix Mechanism (L1)");
        let l2 = LocalMatrixMechanism::optimized(&gram, 1.0, Calibration::L2, 5);
        assert_eq!(l2.name(), "Matrix Mechanism (L2)");
    }
}
