//! Randomized response (Warner \[44\]; Examples 2.7 and 3.3 of the paper).

use ldp_core::{FactorizationMechanism, LdpError, StrategyMatrix};
use ldp_linalg::{LinOp, Matrix};

/// The `n`-ary randomized response strategy matrix (Example 2.7):
/// diagonal entries proportional to `e^ε`, off-diagonal to `1`.
pub fn randomized_response_strategy(n: usize, epsilon: f64) -> StrategyMatrix {
    assert!(n > 0, "domain must be non-empty");
    assert!(epsilon > 0.0 && epsilon.is_finite(), "invalid epsilon");
    let e = epsilon.exp();
    let z = e + n as f64 - 1.0;
    StrategyMatrix::new(Matrix::from_fn(
        n,
        n,
        |o, u| {
            if o == u {
                e / z
            } else {
                1.0 / z
            }
        },
    ))
    // ldp-lint: allow(no-unwrap-in-lib) -- invariant: rows are e^ε/z and 1/z
    // with z = e^ε + n − 1, so columns sum to 1 by construction.
    .expect("randomized response is always a valid strategy")
}

/// Randomized response as a factorization mechanism for the workload with
/// Gram matrix `gram`, with the optimal reconstruction of Theorem 3.10
/// (which for the Histogram workload reproduces `V = Q⁻¹`, Example 3.3).
///
/// # Errors
/// Propagates [`LdpError`] from mechanism construction (e.g. a Gram of the
/// wrong dimension). Randomized response has full rank, so any workload is
/// supported.
pub fn randomized_response(
    n: usize,
    epsilon: f64,
    gram: &dyn LinOp,
) -> Result<FactorizationMechanism, LdpError> {
    let strategy = randomized_response_strategy(n, epsilon);
    Ok(
        FactorizationMechanism::new_unchecked_privacy(strategy, gram, epsilon)?
            .with_name("Randomized Response"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::{DataVector, LdpMechanism};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table1_entries() {
        // Table 1 row 1: Q[o,u] ∝ e^ε if o == u else 1.
        let s = randomized_response_strategy(4, 1.0);
        let q = s.matrix();
        let ratio = q[(0, 0)] / q[(1, 0)];
        assert!((ratio - 1.0_f64.exp()).abs() < 1e-12);
        assert!((s.epsilon() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn example_3_3_reconstruction_matches_inverse() {
        // For the Histogram workload, K should equal Q⁻¹ (Example 3.3).
        let n = 4;
        let gram = Matrix::identity(n);
        let mech = randomized_response(n, 1.0, &gram).unwrap();
        let q_inv = ldp_linalg::Lu::new(mech.strategy().matrix())
            .unwrap()
            .inverse();
        assert!(mech.reconstruction().max_abs_diff(&q_inv) < 1e-8);
        // And V = Q⁻¹ has the closed form of Example 3.3.
        let e = 1.0_f64.exp();
        let expected = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                (e + n as f64 - 2.0) / (e - 1.0)
            } else {
                -1.0 / (e - 1.0)
            }
        });
        assert!(mech.reconstruction().max_abs_diff(&expected) < 1e-8);
    }

    #[test]
    fn unbiased_on_expected_responses() {
        let n = 5;
        let gram = Matrix::identity(n);
        let mech = randomized_response(n, 2.0, &gram).unwrap();
        let data = DataVector::from_counts(vec![7.0, 0.0, 3.0, 5.0, 1.0]);
        let ey = mech.expected_responses(&data);
        let xhat = mech.reconstruction().matvec(&ey);
        for (a, b) in xhat.iter().zip(data.counts()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn high_epsilon_recovers_data_almost_exactly() {
        let n = 3;
        let gram = Matrix::identity(n);
        let mech = randomized_response(n, 8.0, &gram).unwrap();
        let data = DataVector::from_counts(vec![1000.0, 500.0, 100.0]);
        let mut rng = StdRng::seed_from_u64(5);
        let xhat = mech.run(&data, &mut rng);
        for (a, b) in xhat.iter().zip(data.counts()) {
            assert!((a - b).abs() < 0.05 * data.total());
        }
    }

    #[test]
    fn answers_prefix_workload() {
        // RR generalizes beyond Histogram via V = WQ⁻¹ (Section 3).
        let n = 4;
        let w = Matrix::from_fn(n, n, |i, j| if j <= i { 1.0 } else { 0.0 });
        let mech = randomized_response(n, 1.0, &w.gram()).unwrap();
        let profile = mech.variance_profile(&w.gram());
        assert!(profile.iter().all(|t| t.is_finite() && *t > 0.0));
    }
}
