//! The hierarchical mechanism for range queries under LDP
//! (Cormode, Kulkarni & Srivastava \[13\]; also \[42\]).
//!
//! A `b`-ary tree is built over the (padded) domain. Each user picks one
//! tree level uniformly at random and reports the ancestor of their type
//! at that level through randomized response over that level's nodes. The
//! whole protocol is a single strategy matrix: rows are `(level, node)`
//! pairs, and the column of user `u` places probability `1/L` on each
//! level's RR distribution centered at `u`'s ancestor.
//!
//! Range queries then telescope over O(log n) tree nodes, which is why the
//! mechanism excels on Prefix/All Range workloads.

use ldp_core::{FactorizationMechanism, LdpError, StrategyMatrix};
use ldp_linalg::{LinOp, Matrix};

/// Default branching factor; Cormode et al. report fan-outs around 4–5
/// are best in practice.
pub const DEFAULT_BRANCHING: usize = 4;

/// The hierarchical strategy matrix for domain size `n`, branching factor
/// `b`, at budget `epsilon`.
///
/// Levels run `1..=L` with `L = ⌈log_b n⌉` (level `ℓ` has `b^ℓ` nodes over
/// the domain padded to `b^L`); the root level is omitted since a 1-node
/// report carries no information.
///
/// # Panics
/// Panics if `n < 2`, `b < 2`, or `epsilon` is not positive finite.
pub fn hierarchical_strategy(n: usize, b: usize, epsilon: f64) -> StrategyMatrix {
    assert!(n >= 2, "domain must have at least two types");
    assert!(b >= 2, "branching factor must be at least 2");
    assert!(epsilon > 0.0 && epsilon.is_finite(), "invalid epsilon");

    // L = ceil(log_b n), padded domain size b^L.
    let mut levels = 1usize;
    let mut width = b;
    while width < n {
        width *= b;
        levels += 1;
    }
    let e = epsilon.exp();

    // Row layout: level 1 nodes, then level 2, ...
    let mut row_offsets = Vec::with_capacity(levels + 1);
    let mut m = 0usize;
    let mut nodes = 1usize;
    for _ in 0..levels {
        nodes *= b;
        row_offsets.push(m);
        m += nodes;
    }
    row_offsets.push(m);

    let mut q = Matrix::zeros(m, n);
    let level_prob = 1.0 / levels as f64;
    let mut nodes = 1usize;
    let mut block = width; // b^{L-ℓ}: leaf indices covered per node
    for &offset in row_offsets.iter().take(levels) {
        nodes *= b;
        block /= b;
        let z = e + nodes as f64 - 1.0;
        for u in 0..n {
            let ancestor = u / block;
            for node in 0..nodes {
                let p = if node == ancestor { e / z } else { 1.0 / z };
                q[(offset + node, u)] = level_prob * p;
            }
        }
    }
    // ldp-lint: allow(no-unwrap-in-lib) -- invariant: each column mixes one
    // randomized-response block per level with weights 1/levels.
    StrategyMatrix::new(q).expect("hierarchical strategy is always valid")
}

/// The hierarchical mechanism (default branching factor
/// [`DEFAULT_BRANCHING`]) for the workload with Gram matrix `gram`.
///
/// # Errors
/// Propagates [`LdpError`] from mechanism construction. The leaf level has
/// full resolution, so any workload is supported.
pub fn hierarchical(
    n: usize,
    epsilon: f64,
    gram: &dyn LinOp,
) -> Result<FactorizationMechanism, LdpError> {
    let strategy = hierarchical_strategy(n, DEFAULT_BRANCHING, epsilon);
    Ok(
        FactorizationMechanism::new_unchecked_privacy(strategy, gram, epsilon)?
            .with_name("Hierarchical"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::{DataVector, LdpMechanism};

    #[test]
    fn strategy_dimensions() {
        // n=16, b=4: levels 1 (4 nodes) and 2 (16 nodes) -> m = 20.
        let s = hierarchical_strategy(16, 4, 1.0);
        assert_eq!(s.num_outputs(), 20);
        assert_eq!(s.domain_size(), 16);
    }

    #[test]
    fn padding_for_non_power_domain() {
        // n=10, b=4: L=2, padded width 16, m = 4 + 16 = 20.
        let s = hierarchical_strategy(10, 4, 1.0);
        assert_eq!(s.num_outputs(), 20);
        assert_eq!(s.domain_size(), 10);
    }

    #[test]
    fn satisfies_epsilon() {
        for eps in [0.5, 1.0, 2.5] {
            let s = hierarchical_strategy(16, 4, eps);
            assert!(s.epsilon() <= eps + 1e-10, "eps {} > {}", s.epsilon(), eps);
            // The leaf-level RR attains the full budget.
            assert!((s.epsilon() - eps).abs() < 1e-9);
        }
    }

    #[test]
    fn unbiased_estimation_prefix() {
        let n = 8;
        let w = Matrix::from_fn(n, n, |i, j| if j <= i { 1.0 } else { 0.0 });
        let gram = w.gram();
        let mech = hierarchical(n, 1.0, &gram).unwrap();
        let data = DataVector::from_counts(vec![5.0, 3.0, 0.0, 2.0, 9.0, 4.0, 1.0, 6.0]);
        let ey = mech.expected_responses(&data);
        let xhat = mech.reconstruction().matvec(&ey);
        for (a, b) in xhat.iter().zip(data.counts()) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn beats_randomized_response_on_prefix() {
        // Hierarchical was designed for range queries; at moderate n it
        // must dominate RR on Prefix (the paper's Figure 1, Prefix panel).
        use crate::randomized_response::randomized_response;
        let n = 64;
        let w = Matrix::from_fn(n, n, |i, j| if j <= i { 1.0 } else { 0.0 });
        let gram = w.gram();
        let hier = hierarchical(n, 1.0, &gram).unwrap();
        let rr = randomized_response(n, 1.0, &gram).unwrap();
        let sc_h = hier.sample_complexity(&gram, n, 0.01);
        let sc_r = rr.sample_complexity(&gram, n, 0.01);
        assert!(sc_h < sc_r, "hierarchical {sc_h} should beat RR {sc_r}");
    }

    #[test]
    fn branching_factor_two_works() {
        let s = hierarchical_strategy(8, 2, 1.0);
        // Levels: 2, 4, 8 nodes -> m = 14.
        assert_eq!(s.num_outputs(), 14);
    }
}
