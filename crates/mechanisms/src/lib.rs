//! Baseline LDP mechanisms from the literature, as compared against in
//! Section 6 of the paper (and encoded as strategy matrices in Table 1).
//!
//! | Mechanism | Source | Representation |
//! |-----------|--------|----------------|
//! | [`randomized_response`](fn@randomized_response) | Warner \[44\] | strategy matrix, `m = n` |
//! | [`hadamard_response`](fn@hadamard_response) | Acharya et al. \[2\] | strategy matrix, `m = 2^⌈log₂(n+1)⌉` |
//! | [`hierarchical`](fn@hierarchical) | Cormode et al. \[13\] | strategy matrix, `m ≈ n·b/(b−1)` |
//! | [`Fourier`](fourier) | Cormode et al. \[12\] | strategy matrix, `m = 2·|support|` |
//! | [`rappor`](fn@rappor) | Erlingsson et al. \[18\] | strategy matrix, `m = 2^n` (small n only) |
//! | [`subset_selection`](fn@subset_selection) | Ye & Barg \[45\] | strategy matrix, `m = C(n,d)` (small n only) |
//! | [`LocalMatrixMechanism`](matrix_mechanism) | Edmonds et al. \[17\] | noise addition (not a strategy matrix) |
//!
//! The first six produce [`ldp_core::FactorizationMechanism`]s: each was
//! designed for a fixed workload, but (as the paper does in its
//! experiments) the reconstruction is always re-derived per workload with
//! Theorem 3.10, so any of them can answer any supported workload.
//! The local Matrix Mechanism adds per-user noise to a strategy-query
//! encoding and has its own variance analysis.

pub mod fourier;
pub mod hadamard;
pub mod hierarchical;
pub mod matrix_mechanism;
pub mod randomized_response;
pub mod rappor;
pub mod subset_selection;

pub use fourier::Fourier;
pub use hadamard::hadamard_response;
pub use hierarchical::hierarchical;
pub use matrix_mechanism::{Calibration, LocalMatrixMechanism};
pub use randomized_response::randomized_response;
pub use rappor::rappor;
pub use subset_selection::subset_selection;
