//! Exact variance analysis of workload factorization mechanisms
//! (Theorem 3.4, Corollaries 3.5/3.6, Theorems 3.9/3.10/3.11).
//!
//! All functions work through the workload Gram matrix `G = WᵀW` and the
//! *data-vector estimator* `K` (`n × m`), related to the paper's
//! reconstruction matrix by `V = W·K`. Writing the variance in terms of
//! `(K, G)` instead of `(V, Q)` keeps every operation `O(n²m)` even for
//! workloads with `p ≫ n` queries:
//!
//! With `c_o = k_oᵀ G k_o` (the `o`-th column of `K` measured in the
//! `G`-norm) and `A = K·Q`, the per-user-type variance of Theorem 3.4 is
//!
//! ```text
//! T_u = Σ_i v_iᵀ Diag(q_u) v_i − (v_iᵀ q_u)²  =  Σ_o Q[o,u]·c_o − a_uᵀ G a_u
//! ```
//!
//! and the total variance on data `x` is `Σ_u x_u·T_u`.

use ldp_linalg::{dot, linop_matmul, pinv_symmetric, LinOp, Matrix, PinvOptions};

use crate::{DataVector, StrategyMatrix};

/// The optimal data-vector estimator `K = (QᵀD⁻¹Q)† Qᵀ D⁻¹` (`n × m`).
///
/// This is Theorem 3.10 with the workload factored out: the paper's optimal
/// reconstruction is `V = W·K`, and `x̂ = K·y` is the minimum-variance
/// unbiased estimate of the data vector among estimators supported on the
/// strategy's row space.
pub fn optimal_reconstruction(strategy: &StrategyMatrix) -> Matrix {
    let q = strategy.matrix();
    let d = strategy.row_sums();
    let d_inv: Vec<f64> = d
        .iter()
        .map(|&v| if v > 0.0 { 1.0 / v } else { 0.0 })
        .collect();
    // B = D⁻¹ Q  (m × n), M = Qᵀ B  (n × n, symmetric PSD).
    let b = q.scale_rows(&d_inv);
    let mut m = q.t_matmul(&b);
    m.symmetrize();
    let pinv = pinv_symmetric(&m, PinvOptions::default_for_dim(m.rows())).pinv;
    // K = M† Bᵀ.
    pinv.matmul_t(&b)
}

/// Per-user-type variance profile `T_u` (Theorem 3.4) of the mechanism
/// `(Q, K)` on the workload with Gram matrix `gram`.
///
/// `T_u` is the variance contributed to the total workload error by *one*
/// user of type `u`; the total variance on data `x` is `Σ_u x_u T_u`.
/// Values are clamped at zero (they are mathematically non-negative; tiny
/// negative values can appear from floating point cancellation).
///
/// # Panics
/// Panics on dimension mismatches between `strategy`, `k`, and `gram`.
pub fn variance_profile(strategy: &StrategyMatrix, k: &Matrix, gram: &dyn LinOp) -> Vec<f64> {
    let q = strategy.matrix();
    let n = q.cols();
    let m = q.rows();
    assert_eq!(k.shape(), (n, m), "K must be n x m");
    assert_eq!(gram.shape(), (n, n), "Gram must be n x n");

    // P = G K (n × m); c_o = Σ_i K[i,o]·P[i,o]. Structured Grams apply
    // implicitly — m matvecs at O(n) each instead of an O(n²m) product.
    let p = linop_matmul(gram, k);
    let mut c = vec![0.0; m];
    for i in 0..n {
        let k_row = k.row(i);
        let p_row = p.row(i);
        for (co, (&kv, &pv)) in c.iter_mut().zip(k_row.iter().zip(p_row)) {
            *co += kv * pv;
        }
    }

    // First term per type: (Qᵀ c)_u.
    let first = q.t_matvec(&c);

    // Second term per type: a_uᵀ G a_u with A = K Q.
    let a = k.matmul(q);
    let ga = linop_matmul(gram, &a);
    let mut second = vec![0.0; n];
    for i in 0..n {
        let a_row = a.row(i);
        let ga_row = ga.row(i);
        for (s, (&av, &gv)) in second.iter_mut().zip(a_row.iter().zip(ga_row)) {
            *s += av * gv;
        }
    }

    first
        .into_iter()
        .zip(second)
        .map(|(f, s)| (f - s).max(0.0))
        .collect()
}

/// Worst-case total variance `L_worst = N · max_u T_u` (Corollary 3.5).
pub fn worst_case_variance(profile: &[f64], n_users: f64) -> f64 {
    n_users * profile.iter().copied().fold(0.0, f64::max)
}

/// Average-case total variance `L_avg = (N/n) Σ_u T_u` (Corollary 3.6).
pub fn average_case_variance(profile: &[f64], n_users: f64) -> f64 {
    n_users / profile.len() as f64 * profile.iter().sum::<f64>()
}

/// Exact data-dependent total variance `Σ_u x_u T_u` (Theorem 3.4).
///
/// # Panics
/// Panics if the profile length differs from the data's domain size.
pub fn data_variance(profile: &[f64], data: &DataVector) -> f64 {
    assert_eq!(profile.len(), data.domain_size());
    profile.iter().zip(data.counts()).map(|(t, x)| t * x).sum()
}

/// The trace objective `L(V, Q) = tr[V D_Q Vᵀ] = tr[K D Kᵀ G]`
/// (Theorem 3.9), computed without forming `V`.
///
/// Related to the average-case variance by
/// `L_avg = (N/n)(L(V,Q) − ‖W‖²_F)` with `‖W‖²_F = tr(G)`.
pub fn trace_objective(strategy: &StrategyMatrix, k: &Matrix, gram: &dyn LinOp) -> f64 {
    let d = strategy.row_sums();
    // tr[K D Kᵀ G] = Σ_o d_o · k_oᵀ G k_o.
    let p = linop_matmul(gram, k);
    let mut total = 0.0;
    for i in 0..k.rows() {
        let k_row = k.row(i);
        let p_row = p.row(i);
        for (o, (&kv, &pv)) in k_row.iter().zip(p_row).enumerate() {
            total += d[o] * kv * pv;
        }
    }
    total
}

/// The strategy-only objective `L(Q) = tr[(QᵀD⁻¹Q)†(WᵀW)]`
/// (Theorem 3.11) — the quantity minimized by the optimizer.
pub fn strategy_objective(strategy: &StrategyMatrix, gram: &dyn LinOp) -> f64 {
    let q = strategy.matrix();
    let d = strategy.row_sums();
    let d_inv: Vec<f64> = d
        .iter()
        .map(|&v| if v > 0.0 { 1.0 / v } else { 0.0 })
        .collect();
    let mut m = q.t_matmul(&q.scale_rows(&d_inv));
    m.symmetrize();
    let pinv = pinv_symmetric(&m, PinvOptions::default_for_dim(m.rows())).pinv;
    // tr[M† G] = Σ_ij M†_ij G_ij since both are symmetric.
    if let Some(g) = gram.as_dense() {
        return pinv
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(a, b)| a * b)
            .sum();
    }
    let n = pinv.rows();
    let mut col = vec![0.0; n];
    let mut total = 0.0;
    for j in 0..n {
        gram.col_into(j, &mut col);
        total += dot(pinv.row(j), &col);
    }
    total
}

/// Max-norm of the row-space residual `(I − KQ)ᵀ G (I − KQ)`.
///
/// Zero iff the workload lies in the row space of `Q` — the
/// `W = WQ†Q` support condition of Theorem 3.10. Used to validate that a
/// factorization mechanism can answer the workload unbiasedly.
pub fn rowspace_residual(strategy: &StrategyMatrix, k: &Matrix, gram: &dyn LinOp) -> f64 {
    let n = strategy.domain_size();
    let mut r = Matrix::identity(n);
    r -= &k.matmul(strategy.matrix());
    // RᵀGR: symmetric n×n.
    let gr = linop_matmul(gram, &r);
    r.t_matmul(&gr).max_abs()
}

/// Per-user-type variance computed directly from an explicit `(V, Q)` pair
/// via the summation in Theorem 3.4. Quadratic in `p` — used by tests as
/// an oracle for the Gram-based fast path, and by small examples.
pub fn variance_profile_explicit(v: &Matrix, q: &Matrix) -> Vec<f64> {
    assert_eq!(v.cols(), q.rows(), "V is p x m, Q is m x n");
    let n = q.cols();
    let mut profile = vec![0.0; n];
    // Column squared norms of V: c_o = Σ_i V[i,o]².
    let mut c = vec![0.0; q.rows()];
    for i in 0..v.rows() {
        for (co, &vv) in c.iter_mut().zip(v.row(i)) {
            *co += vv * vv;
        }
    }
    let vq = v.matmul(q); // p × n
    for u in 0..n {
        let qu = q.col(u);
        let first: f64 = qu.iter().zip(&c).map(|(a, b)| a * b).sum();
        let second: f64 = (0..v.rows()).map(|i| vq[(i, u)] * vq[(i, u)]).sum();
        profile[u] = (first - second).max(0.0);
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_linalg::Matrix;

    fn rr_strategy(n: usize, eps: f64) -> StrategyMatrix {
        let e = eps.exp();
        let z = e + n as f64 - 1.0;
        StrategyMatrix::new(Matrix::from_fn(
            n,
            n,
            |o, u| {
                if o == u {
                    e / z
                } else {
                    1.0 / z
                }
            },
        ))
        .unwrap()
    }

    /// Example 3.7: RR on the Histogram workload has
    /// L_worst = L_avg = N(n−1)[n/(e^ε−1)² + 2/(e^ε−1)].
    #[test]
    fn example_3_7_randomized_response_variance() {
        for (n, eps) in [(5, 1.0), (16, 0.5), (8, 2.0)] {
            let s = rr_strategy(n, eps);
            let k = optimal_reconstruction(&s);
            let gram = Matrix::identity(n);
            let profile = variance_profile(&s, &k, &gram);
            let n_users = 1000.0;
            let e = eps.exp();
            let nf = n as f64;
            let expected = n_users * (nf - 1.0) * (nf / (e - 1.0).powi(2) + 2.0 / (e - 1.0));
            let worst = worst_case_variance(&profile, n_users);
            let avg = average_case_variance(&profile, n_users);
            assert!(
                (worst - expected).abs() / expected < 1e-8,
                "worst-case mismatch: {worst} vs {expected} (n={n}, eps={eps})"
            );
            assert!((avg - expected).abs() / expected < 1e-8);
        }
    }

    #[test]
    fn gram_path_matches_explicit_path() {
        // Random-ish strategy (RR) and a non-trivial workload (prefix).
        let n = 6;
        let s = rr_strategy(n, 1.0);
        let k = optimal_reconstruction(&s);
        let w = Matrix::from_fn(n, n, |i, j| if j <= i { 1.0 } else { 0.0 });
        let gram = w.gram();
        let fast = variance_profile(&s, &k, &gram);
        let v = w.matmul(&k); // V = W K
        let explicit = variance_profile_explicit(&v, s.matrix());
        for (a, b) in fast.iter().zip(&explicit) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn theorem_3_9_identity() {
        // L_avg = (N/n)(tr[V D Vᵀ] − ‖W‖²_F).
        let n = 5;
        let s = rr_strategy(n, 1.5);
        let k = optimal_reconstruction(&s);
        let w = Matrix::from_fn(n, n, |i, j| if j <= i { 1.0 } else { 0.0 });
        let gram = w.gram();
        let profile = variance_profile(&s, &k, &gram);
        let n_users = 77.0;
        let lavg = average_case_variance(&profile, n_users);
        let trace_obj = trace_objective(&s, &k, &gram);
        let identity = n_users / n as f64 * (trace_obj - gram.trace());
        assert!((lavg - identity).abs() < 1e-7 * lavg.abs().max(1.0));
    }

    #[test]
    fn theorem_3_11_objective_matches_trace_objective_at_optimum() {
        let n = 5;
        let s = rr_strategy(n, 1.0);
        let k = optimal_reconstruction(&s);
        let w = Matrix::from_fn(n, n, |i, j| if j <= i { 1.0 } else { 0.0 });
        let gram = w.gram();
        let via_k = trace_objective(&s, &k, &gram);
        let via_q = strategy_objective(&s, &gram);
        assert!((via_k - via_q).abs() < 1e-7 * via_q.abs());
    }

    #[test]
    fn optimal_k_beats_naive_inverse_on_histogram() {
        // For square invertible Q, K = Q⁻¹ is *a* reconstruction; the
        // D-weighted one of Theorem 3.10 must be at least as good.
        // (For RR they coincide by symmetry, so perturb the strategy.)
        let q = Matrix::from_rows(&[&[0.6, 0.2, 0.2], &[0.3, 0.5, 0.2], &[0.1, 0.3, 0.6]]);
        let s = StrategyMatrix::new(q.clone()).unwrap();
        let gram = Matrix::identity(3);
        let k_opt = optimal_reconstruction(&s);
        let k_inv = ldp_linalg::Lu::new(&q).unwrap().inverse();
        let obj_opt = trace_objective(&s, &k_opt, &gram);
        let obj_inv = trace_objective(&s, &k_inv, &gram);
        assert!(obj_opt <= obj_inv + 1e-9, "{obj_opt} > {obj_inv}");
        // Both must reconstruct unbiasedly.
        assert!(rowspace_residual(&s, &k_opt, &gram) < 1e-8);
        assert!(rowspace_residual(&s, &k_inv, &gram) < 1e-8);
    }

    #[test]
    fn rowspace_residual_detects_unsupported_workload() {
        // Strategy with constant rows carries no information: Q has rank 1,
        // so the identity workload is unsupported.
        let q = Matrix::filled(4, 4, 0.25);
        let s = StrategyMatrix::new(q).unwrap();
        let k = optimal_reconstruction(&s);
        let gram = Matrix::identity(4);
        assert!(rowspace_residual(&s, &k, &gram) > 0.1);
    }

    #[test]
    fn data_variance_interpolates_worst_and_average() {
        let n = 4;
        let s = rr_strategy(n, 1.0);
        let k = optimal_reconstruction(&s);
        // Non-uniform workload to break the RR symmetry.
        let w = Matrix::from_fn(3, n, |i, j| ((i + j) % 3) as f64);
        let gram = w.gram();
        let profile = variance_profile(&s, &k, &gram);
        let n_users = 50.0;
        let worst = worst_case_variance(&profile, n_users);
        let avg = average_case_variance(&profile, n_users);
        assert!(avg <= worst + 1e-12);
        // Uniform data reproduces the average case.
        let uniform = DataVector::uniform(n, n_users);
        let dv = data_variance(&profile, &uniform);
        assert!((dv - avg).abs() < 1e-9);
        // Point mass on the worst type reproduces the worst case.
        let worst_u = profile
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let point = DataVector::point_mass(n, worst_u, n_users);
        assert!((data_variance(&profile, &point) - worst).abs() < 1e-9);
    }

    #[test]
    fn profile_nonnegative() {
        let s = rr_strategy(6, 3.0);
        let k = optimal_reconstruction(&s);
        let gram = Matrix::identity(6);
        for t in variance_profile(&s, &k, &gram) {
            assert!(t >= 0.0);
        }
    }
}
