//! Core abstractions for linear query answering under local differential
//! privacy (LDP), following McKenna, Maity, Mazumdar & Miklau,
//! *"A workload-adaptive mechanism for linear queries under local
//! differential privacy"*, VLDB 2020.
//!
//! The crate provides the paper's Section 2–3 and Section 5 machinery:
//!
//! * [`DataVector`] — the histogram-of-users representation (Definition 2.1).
//! * [`StrategyMatrix`] — an `m × n` column-stochastic matrix encoding a
//!   conditional distribution `Pr[M(u) = o] = Q[o, u]` with its ε-LDP
//!   validity checks (Proposition 2.6).
//! * [`FactorizationMechanism`] — the workload factorization mechanism
//!   `M_{V,Q}(x) = V·M_Q(x)` (Definition 3.2), stored via the data-vector
//!   estimator `K` with `V = W·K`, so that workloads with millions of
//!   queries never materialize `V`.
//! * [`variance`] — exact, worst-case and average-case variance
//!   (Theorem 3.4, Corollaries 3.5/3.6), the trace objective
//!   (Theorems 3.9/3.11) and the optimal reconstruction (Theorem 3.10).
//! * [`complexity`] — normalized variance and sample complexity
//!   (Definition 5.2, Corollaries 5.3/5.4).
//! * [`bounds`] — the SVD lower bound (Theorem 5.6, Corollary 5.7).
//! * [`LdpMechanism`] — the common trait implemented by the optimized
//!   mechanism and every baseline in `ldp-mechanisms`.
//!
//! Everything is expressed through the workload Gram matrix `G = WᵀW`
//! rather than `W` itself; see `DESIGN.md` §3 for why this is the key to
//! scaling past `p = O(n²)` query workloads.

pub mod audit;
pub mod bounds;
pub mod complexity;
mod data;
mod error;
mod mechanism;
pub mod protocol;
pub mod sampling;
mod strategy;
mod traits;
pub mod variance;

pub use data::DataVector;
pub use error::LdpError;
pub use mechanism::{FactorizationMechanism, ResponseVector};
pub use protocol::{Aggregator, AggregatorShard, Client};
pub use strategy::StrategyMatrix;
pub use traits::{Deployable, LdpMechanism};

/// Re-export of the linear algebra substrate used throughout.
pub use ldp_linalg as linalg;
