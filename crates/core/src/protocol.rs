//! The deployment-facing client/aggregator protocol.
//!
//! [`FactorizationMechanism::run`](crate::LdpMechanism::run)
//! simulates a whole population in one call; a real deployment instead
//! has many independent clients, each holding only the (public) strategy
//! matrix, reporting once, and aggregators that fold reports into a
//! response histogram as they arrive. This module provides exactly that
//! split:
//!
//! * [`Client`] — wraps the public strategy; `respond(my_type)` draws one
//!   randomized report. This is the *only* place user data touches the
//!   pipeline, and the output is a bare output index `o ∈ [m]`. Clients
//!   obtained from [`FactorizationMechanism::client`] share the
//!   mechanism's precomputed alias tables behind an `Arc`, so cloning one
//!   per thread is O(1).
//! * [`AggregatorShard`] — a plain histogram of `u64` counts with no
//!   attached reconstruction. Shards are cheap to create (one per thread
//!   or ingest node), ingest independently, and [`AggregatorShard::merge`]
//!   into each other associatively — counts are integers, so any merge
//!   order produces bit-identical totals.
//! * [`Aggregator`] — a shard plus the mechanism's reconstruction matrix;
//!   accumulates reports (directly or by absorbing shards) and produces
//!   the unbiased data-vector estimate on demand; estimates can be read
//!   at any time (e.g. for progressive dashboards) without disturbing
//!   collection.
//!
//! Counts are stored as integers end-to-end: summing `f64`s drifts once
//! totals pass 2⁵³ and silently loses single reports long before that,
//! which matters at the billion-report scale the sharded path targets.
//! The conversion to `f64` happens exactly once, inside
//! [`Aggregator::estimate`] / [`Aggregator::responses`].
//!
//! ```
//! use ldp_core::protocol::{Aggregator, Client};
//! use ldp_core::{FactorizationMechanism, StrategyMatrix};
//! use ldp_linalg::Matrix;
//! use rand::SeedableRng;
//!
//! let eps = 1.0_f64;
//! let z = eps.exp() + 2.0;
//! let q = Matrix::from_fn(3, 3, |o, u| if o == u { eps.exp() / z } else { 1.0 / z });
//! let mech = FactorizationMechanism::new(
//!     StrategyMatrix::new(q).unwrap(), &Matrix::identity(3), eps).unwrap();
//!
//! let client = mech.client();
//! let mut aggregator = Aggregator::new(&mech);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! for _ in 0..100 {
//!     aggregator.ingest(client.respond(2, &mut rng)).unwrap();
//! }
//! assert_eq!(aggregator.reports(), 100);
//! let estimate = aggregator.estimate();
//! assert_eq!(estimate.len(), 3);
//! ```
//!
//! Sharded collection across threads:
//!
//! ```
//! use ldp_core::protocol::{Aggregator, AggregatorShard};
//! use ldp_core::{FactorizationMechanism, StrategyMatrix};
//! use ldp_linalg::Matrix;
//! use rand::SeedableRng;
//!
//! let eps = 1.0_f64;
//! let z = eps.exp() + 2.0;
//! let q = Matrix::from_fn(3, 3, |o, u| if o == u { eps.exp() / z } else { 1.0 / z });
//! let mech = FactorizationMechanism::new(
//!     StrategyMatrix::new(q).unwrap(), &Matrix::identity(3), eps).unwrap();
//!
//! let client = mech.client();
//! let shards: Vec<AggregatorShard> = std::thread::scope(|scope| {
//!     (0..4u64)
//!         .map(|t| {
//!             let client = client.clone();
//!             scope.spawn(move || {
//!                 let mut shard = AggregatorShard::new(client.num_outputs());
//!                 let mut rng = rand::rngs::StdRng::seed_from_u64(t);
//!                 for _ in 0..1000 {
//!                     shard.ingest(client.respond(1, &mut rng)).unwrap();
//!                 }
//!                 shard
//!             })
//!         })
//!         .collect::<Vec<_>>()
//!         .into_iter()
//!         .map(|h| h.join().unwrap())
//!         .collect()
//! });
//! let mut aggregator = Aggregator::new(&mech);
//! for shard in shards {
//!     aggregator.merge(shard).unwrap();
//! }
//! assert_eq!(aggregator.reports(), 4000);
//! ```

use std::sync::Arc;

use ldp_linalg::Matrix;
use rand::RngCore;

use crate::sampling::AliasTable;
use crate::{FactorizationMechanism, LdpError, StrategyMatrix};

/// The client side of the protocol: holds the public strategy and
/// produces one randomized report per user.
///
/// Alias tables for every user type are precomputed, so `respond` is O(1)
/// and allocation-free — suitable for embedding in high-volume telemetry
/// paths. Prefer [`FactorizationMechanism::client`], which shares the
/// mechanism's own tables; [`Client::new`] builds a fresh set from a raw
/// strategy (useful when only the public matrix is available). Cloning a
/// client is O(1) either way.
#[derive(Clone, Debug)]
pub struct Client {
    tables: Arc<[AliasTable]>,
    num_outputs: usize,
}

impl Client {
    /// Builds a client from the deployment's public strategy matrix,
    /// constructing one alias table per user type.
    pub fn new(strategy: StrategyMatrix) -> Self {
        let tables: Arc<[AliasTable]> = (0..strategy.domain_size())
            .map(|u| AliasTable::new(&strategy.output_distribution(u)))
            .collect();
        Self {
            tables,
            num_outputs: strategy.num_outputs(),
        }
    }

    /// Wraps already-built alias tables (shared with a mechanism).
    pub(crate) fn from_shared(tables: Arc<[AliasTable]>, num_outputs: usize) -> Self {
        Self {
            tables,
            num_outputs,
        }
    }

    /// Domain size `n` this client can report over.
    pub fn domain_size(&self) -> usize {
        self.tables.len()
    }

    /// Number of possible reports `m`.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Draws the randomized report for a user of type `user_type`.
    ///
    /// # Panics
    /// Panics if `user_type` is out of range — a misconfigured client
    /// must fail closed rather than submit something unprotected.
    pub fn respond(&self, user_type: usize, rng: &mut dyn RngCore) -> usize {
        self.tables[user_type].sample(rng)
    }
}

/// Validates a batch of reports against an output count, returning the
/// first offending report if any.
/// Validates a report batch against an output range without ingesting
/// it: every report must be `< num_outputs`. This is the admission check
/// [`AggregatorShard::ingest_batch`] runs internally, exported so a
/// serving front door can reject a bad batch *before* taking any
/// aggregation lock.
///
/// A branchless vectorized max clears the whole batch in one sweep; only
/// a failing batch pays the scan for the first offender (identical
/// observable behavior, error included).
///
/// # Errors
/// [`LdpError::DimensionMismatch`] naming the first invalid report.
pub fn validate_reports(reports: &[usize], num_outputs: usize) -> Result<(), LdpError> {
    if reports.is_empty() || ldp_linalg::kernels::max_usize(reports) < num_outputs {
        return Ok(());
    }
    match reports.iter().find(|&&r| r >= num_outputs) {
        None => Ok(()),
        Some(&bad) => Err(LdpError::DimensionMismatch {
            context: "client report",
            expected: num_outputs,
            actual: bad,
        }),
    }
}

/// One shard of a distributed aggregation: a bare `u64` response
/// histogram with no reconstruction attached.
///
/// Shards are the unit of parallelism in collection — create one per
/// thread (or per ingest node), let each ingest its stream of reports
/// independently, then [`AggregatorShard::merge`] pairwise or fold them
/// all into an [`Aggregator`] via [`Aggregator::merge`]. Because counts
/// are integers, merging is exact and associative: any shard topology
/// yields bit-identical totals to a single sequential aggregator fed the
/// same reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggregatorShard {
    counts: Vec<u64>,
}

impl AggregatorShard {
    /// An empty shard over `num_outputs` possible reports.
    pub fn new(num_outputs: usize) -> Self {
        Self {
            counts: vec![0; num_outputs],
        }
    }

    /// Rehydrates a shard from previously exported counts (the inverse of
    /// [`AggregatorShard::into_counts`]) — the durability hook used by
    /// snapshot decoding: counts are exact `u64`s, so a restored shard is
    /// bit-identical to the one that was exported.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        Self { counts }
    }

    /// Consumes the shard, returning its exact integer counts — the
    /// loss-free export used by snapshot encoding (no `f64` conversion
    /// ever touches the durable representation).
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }

    /// Number of possible reports `m`.
    pub fn num_outputs(&self) -> usize {
        self.counts.len()
    }

    /// Ingests one client report.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] for an out-of-range report (e.g. a
    /// corrupted or malicious submission) — the report is *not* counted.
    pub fn ingest(&mut self, report: usize) -> Result<(), LdpError> {
        let Some(slot) = self.counts.get_mut(report) else {
            return Err(LdpError::DimensionMismatch {
                context: "client report",
                expected: self.counts.len(),
                actual: report,
            });
        };
        *slot += 1;
        Ok(())
    }

    /// Ingests a batch of reports atomically: the whole batch is
    /// validated up front, so a bad report rejects the batch *without*
    /// counting any of it.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] naming the first invalid report;
    /// the shard is unchanged.
    pub fn ingest_batch(&mut self, reports: &[usize]) -> Result<(), LdpError> {
        validate_reports(reports, self.counts.len())?;
        for &r in reports {
            self.counts[r] += 1;
        }
        Ok(())
    }

    /// Number of reports collected into this shard.
    pub fn reports(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The raw integer counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Combines two shards; exact (integer addition), so merge order
    /// never affects the result.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] if the shards disagree on the
    /// number of outputs.
    pub fn merge(mut self, other: AggregatorShard) -> Result<AggregatorShard, LdpError> {
        self.add_assign(&other)?;
        Ok(self)
    }

    /// Drains another shard into this one: `other`'s counts are added
    /// here (exact integer addition) and `other` is reset to empty *in
    /// place* — no allocation on either side. This is the flush primitive
    /// a long-lived collector (one shard per connection or per thread)
    /// uses to hand accumulated counts to a central aggregator and keep
    /// collecting into the same buffer.
    ///
    /// Because the addition is exact and commutative, draining N shards
    /// in any order yields totals bit-identical to one sequential shard
    /// fed the same reports.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] if the shards disagree on the
    /// number of outputs; both shards are unchanged.
    pub fn merge_from(&mut self, other: &mut AggregatorShard) -> Result<(), LdpError> {
        self.add_assign(other)?;
        other.counts.fill(0);
        Ok(())
    }

    /// Adds another shard's counts into this one, leaving `self`
    /// unchanged on error. Shared by [`AggregatorShard::merge`] and
    /// [`Aggregator::merge`].
    fn add_assign(&mut self, other: &AggregatorShard) -> Result<(), LdpError> {
        if self.counts.len() != other.counts.len() {
            return Err(LdpError::DimensionMismatch {
                context: "aggregator shard merge",
                expected: self.counts.len(),
                actual: other.counts.len(),
            });
        }
        ldp_linalg::kernels::add_u64(&mut self.counts, &other.counts);
        Ok(())
    }
}

/// The analyst side of the protocol: folds reports into the response
/// histogram and post-processes on demand.
#[derive(Clone, Debug)]
pub struct Aggregator {
    shard: AggregatorShard,
    reconstruction: Matrix,
}

impl Aggregator {
    /// Builds an aggregator sharing the mechanism's reconstruction.
    pub fn new(mechanism: &FactorizationMechanism) -> Self {
        Self::from_reconstruction(mechanism.reconstruction().clone())
    }

    /// Builds an aggregator from a bare reconstruction matrix `K`
    /// (`n × m`) — what [`Deployable`](crate::Deployable) mechanisms
    /// expose.
    pub fn from_reconstruction(reconstruction: Matrix) -> Self {
        Self {
            shard: AggregatorShard::new(reconstruction.cols()),
            reconstruction,
        }
    }

    /// Reassembles an aggregator from a reconstruction matrix and a shard
    /// of previously collected counts — the durability hook used when
    /// resuming from a snapshot. Counts are exact integers, so the
    /// restored aggregator's estimates are bit-identical to the one that
    /// was checkpointed.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] if the shard's output count
    /// disagrees with the reconstruction's column count.
    pub fn from_parts(reconstruction: Matrix, shard: AggregatorShard) -> Result<Self, LdpError> {
        if shard.num_outputs() != reconstruction.cols() {
            return Err(LdpError::DimensionMismatch {
                context: "aggregator restore",
                expected: reconstruction.cols(),
                actual: shard.num_outputs(),
            });
        }
        Ok(Self {
            shard,
            reconstruction,
        })
    }

    /// The reconstruction matrix `K` (`n × m`) this aggregator
    /// post-processes with.
    pub fn reconstruction(&self) -> &Matrix {
        &self.reconstruction
    }

    /// Clones the current counts out as a standalone shard — the exact
    /// integer state a checkpoint must capture. Collection can continue
    /// afterwards.
    pub fn to_shard(&self) -> AggregatorShard {
        self.shard.clone()
    }

    /// Ingests one client report.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] for an out-of-range report (e.g. a
    /// corrupted or malicious submission) — the report is *not* counted.
    pub fn ingest(&mut self, report: usize) -> Result<(), LdpError> {
        self.shard.ingest(report)
    }

    /// Ingests a batch of reports atomically: the whole batch is
    /// validated up front, so a bad report rejects the batch *without*
    /// counting any of it.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] naming the first invalid report;
    /// the aggregator is unchanged.
    pub fn ingest_batch(&mut self, reports: &[usize]) -> Result<(), LdpError> {
        self.shard.ingest_batch(reports)
    }

    /// Absorbs a shard collected elsewhere (another thread, another
    /// node). Exact integer addition — N merged shards equal one
    /// sequential aggregator bit-for-bit.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] if the shard disagrees on the
    /// number of outputs; the aggregator is unchanged.
    pub fn merge(&mut self, shard: AggregatorShard) -> Result<(), LdpError> {
        self.shard.add_assign(&shard)
    }

    /// Drains a shard collected elsewhere into this aggregator and resets
    /// it in place (see [`AggregatorShard::merge_from`]) — the
    /// allocation-free flush path for long-lived per-connection shards.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] if the shard disagrees on the
    /// number of outputs; both sides are unchanged.
    pub fn merge_from(&mut self, shard: &mut AggregatorShard) -> Result<(), LdpError> {
        self.shard.merge_from(shard)
    }

    /// Number of reports collected so far.
    pub fn reports(&self) -> u64 {
        self.shard.reports()
    }

    /// The raw integer counts collected so far.
    pub fn counts(&self) -> &[u64] {
        self.shard.counts()
    }

    /// The raw response histogram collected so far.
    pub fn responses(&self) -> crate::ResponseVector {
        crate::ResponseVector::from_counts(self.shard.counts.iter().map(|&c| c as f64).collect())
    }

    /// The current unbiased data-vector estimate `x̂ = K·y`. Can be called
    /// at any time; collection continues afterwards.
    pub fn estimate(&self) -> Vec<f64> {
        let y: Vec<f64> = self.shard.counts.iter().map(|&c| c as f64).collect();
        self.reconstruction.matvec(&y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mechanism(n: usize, eps: f64) -> FactorizationMechanism {
        let e = eps.exp();
        let z = e + n as f64 - 1.0;
        let q = Matrix::from_fn(n, n, |o, u| if o == u { e / z } else { 1.0 / z });
        FactorizationMechanism::new(StrategyMatrix::new(q).unwrap(), &Matrix::identity(n), eps)
            .unwrap()
    }

    #[test]
    fn protocol_matches_batch_run_distribution() {
        // Collect via the client/aggregator path and via `run`; both are
        // unbiased, so their estimates must agree in expectation.
        let n = 4;
        let mech = mechanism(n, 1.0);
        let client = Client::new(mech.strategy().clone());
        let data = DataVector::from_counts(vec![500.0, 300.0, 150.0, 50.0]);

        let mut rng = StdRng::seed_from_u64(8);
        let trials = 40;
        let mut protocol_mean = vec![0.0; n];
        for _ in 0..trials {
            let mut agg = Aggregator::new(&mech);
            for (u, count) in data.nonzero() {
                for _ in 0..count as u64 {
                    agg.ingest(client.respond(u, &mut rng)).unwrap();
                }
            }
            for (m, v) in protocol_mean.iter_mut().zip(agg.estimate()) {
                *m += v / trials as f64;
            }
        }
        for (mean, truth) in protocol_mean.iter().zip(data.counts()) {
            assert!(
                (mean - truth).abs() < 0.15 * data.total(),
                "{mean} vs {truth}"
            );
        }
    }

    #[test]
    fn shared_client_matches_standalone_client() {
        // The mechanism's cached tables and a freshly built client are
        // the same tables — identical seeds draw identical reports.
        let mech = mechanism(5, 1.0);
        let shared = mech.client();
        let standalone = Client::new(mech.strategy().clone());
        let mut rng_a = StdRng::seed_from_u64(33);
        let mut rng_b = StdRng::seed_from_u64(33);
        for u in [0usize, 3, 4, 1, 2, 2, 0] {
            assert_eq!(
                shared.respond(u, &mut rng_a),
                standalone.respond(u, &mut rng_b)
            );
        }
    }

    #[test]
    fn aggregator_counts_and_incremental_estimates() {
        let mech = mechanism(3, 1.0);
        let mut agg = Aggregator::new(&mech);
        assert_eq!(agg.reports(), 0);
        agg.ingest_batch(&[0, 1, 1, 2]).unwrap();
        assert_eq!(agg.reports(), 4);
        assert_eq!(agg.responses().counts(), &[1.0, 2.0, 1.0]);
        assert_eq!(agg.counts(), &[1, 2, 1]);
        // Estimate readable mid-collection and total-preserving.
        let est: f64 = agg.estimate().iter().sum();
        assert!((est - 4.0).abs() < 1e-9);
        agg.ingest(0).unwrap();
        assert_eq!(agg.reports(), 5);
    }

    #[test]
    fn aggregator_rejects_corrupted_report() {
        let mech = mechanism(3, 1.0);
        let mut agg = Aggregator::new(&mech);
        agg.ingest(2).unwrap();
        let err = agg.ingest(99);
        assert!(matches!(err, Err(LdpError::DimensionMismatch { .. })));
        // The bad report was not counted; earlier ones were.
        assert_eq!(agg.reports(), 1);
    }

    #[test]
    fn bad_batch_is_rejected_atomically() {
        let mech = mechanism(3, 1.0);
        let mut agg = Aggregator::new(&mech);
        agg.ingest_batch(&[0, 1]).unwrap();
        let err = agg.ingest_batch(&[2, 2, 99, 1]);
        assert!(matches!(
            err,
            Err(LdpError::DimensionMismatch { actual: 99, .. })
        ));
        // Nothing from the bad batch landed — not even the valid prefix.
        assert_eq!(agg.counts(), &[1, 1, 0]);
        assert_eq!(agg.reports(), 2);
    }

    #[test]
    fn shards_merge_exactly_and_match_sequential() {
        let mech = mechanism(4, 1.0);
        let reports: Vec<usize> = (0..1000).map(|i| (i * 7 + i / 3) % 4).collect();

        let mut sequential = Aggregator::new(&mech);
        sequential.ingest_batch(&reports).unwrap();

        // Round-robin over 3 shards, merged in two different orders.
        let m = mech.strategy().num_outputs();
        let mut shards = vec![
            AggregatorShard::new(m),
            AggregatorShard::new(m),
            AggregatorShard::new(m),
        ];
        for (i, &r) in reports.iter().enumerate() {
            shards[i % 3].ingest(r).unwrap();
        }
        let mut forward = Aggregator::new(&mech);
        for s in shards.clone() {
            forward.merge(s).unwrap();
        }
        let mut backward = Aggregator::new(&mech);
        for s in shards.into_iter().rev() {
            backward.merge(s).unwrap();
        }

        assert_eq!(forward.counts(), sequential.counts());
        assert_eq!(backward.counts(), sequential.counts());
        // Bit-for-bit identical estimates, not just approximately equal.
        assert_eq!(forward.estimate(), sequential.estimate());
        assert_eq!(backward.estimate(), sequential.estimate());
    }

    #[test]
    fn shard_pairwise_merge_is_associative() {
        let mut a = AggregatorShard::new(3);
        let mut b = AggregatorShard::new(3);
        let mut c = AggregatorShard::new(3);
        a.ingest_batch(&[0, 0, 1]).unwrap();
        b.ingest_batch(&[2, 1]).unwrap();
        c.ingest_batch(&[2, 2, 2]).unwrap();
        let ab_c = a
            .clone()
            .merge(b.clone())
            .unwrap()
            .merge(c.clone())
            .unwrap();
        let a_bc = a.merge(b.merge(c).unwrap()).unwrap();
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.counts(), &[2, 2, 4]);
        assert_eq!(ab_c.reports(), 8);
    }

    #[test]
    fn shard_count_export_round_trips_exactly() {
        let mut shard = AggregatorShard::new(4);
        shard.ingest_batch(&[0, 3, 3, 1]).unwrap();
        let counts = shard.clone().into_counts();
        assert_eq!(counts, vec![1, 1, 0, 2]);
        assert_eq!(AggregatorShard::from_counts(counts), shard);
    }

    #[test]
    fn aggregator_restores_from_parts_bit_identically() {
        let mech = mechanism(3, 1.0);
        let mut agg = Aggregator::new(&mech);
        agg.ingest_batch(&[0, 1, 1, 2, 2, 2]).unwrap();
        let restored =
            Aggregator::from_parts(agg.reconstruction().clone(), agg.to_shard()).unwrap();
        assert_eq!(restored.counts(), agg.counts());
        assert_eq!(restored.estimate(), agg.estimate());
        // Original continues collecting after the checkpoint read.
        agg.ingest(0).unwrap();
        assert_eq!(agg.reports(), 7);
    }

    #[test]
    fn from_parts_rejects_mismatched_shard() {
        let mech = mechanism(3, 1.0);
        let err = Aggregator::from_parts(mech.reconstruction().clone(), AggregatorShard::new(5));
        assert!(matches!(err, Err(LdpError::DimensionMismatch { .. })));
    }

    #[test]
    fn merge_rejects_mismatched_shards() {
        let mech = mechanism(3, 1.0);
        let mut agg = Aggregator::new(&mech);
        let err = agg.merge(AggregatorShard::new(5));
        assert!(matches!(err, Err(LdpError::DimensionMismatch { .. })));
        let err = AggregatorShard::new(3).merge(AggregatorShard::new(5));
        assert!(matches!(err, Err(LdpError::DimensionMismatch { .. })));
    }

    #[test]
    fn client_reports_in_range_and_biased_to_truth() {
        let mech = mechanism(5, 3.0);
        let client = Client::new(mech.strategy().clone());
        assert_eq!(client.domain_size(), 5);
        assert_eq!(client.num_outputs(), 5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = 0;
        let trials = 2000;
        for _ in 0..trials {
            let r = client.respond(2, &mut rng);
            assert!(r < 5);
            if r == 2 {
                hits += 1;
            }
        }
        // At eps=3, P(truth) = e^3/(e^3+4) ≈ 0.834.
        let freq = hits as f64 / trials as f64;
        assert!((freq - 0.834).abs() < 0.04, "freq {freq}");
    }

    #[test]
    #[should_panic]
    fn client_fails_closed_on_bad_type() {
        let mech = mechanism(3, 1.0);
        let client = Client::new(mech.strategy().clone());
        let mut rng = StdRng::seed_from_u64(0);
        let _ = client.respond(7, &mut rng);
    }

    #[test]
    fn validate_reports_names_first_offender() {
        assert!(validate_reports(&[], 4).is_ok());
        assert!(validate_reports(&[0, 3, 1], 4).is_ok());
        match validate_reports(&[0, 9, 7], 4) {
            Err(LdpError::DimensionMismatch {
                expected, actual, ..
            }) => {
                assert_eq!(expected, 4);
                assert_eq!(actual, 9, "first offender, not the max");
            }
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn merge_from_drains_exactly_and_resets_in_place() {
        let mut central = AggregatorShard::new(4);
        central.ingest_batch(&[0, 1, 1]).unwrap();
        let mut conn = AggregatorShard::new(4);
        conn.ingest_batch(&[2, 3, 3, 3]).unwrap();
        central.merge_from(&mut conn).unwrap();
        assert_eq!(central.counts(), &[1, 2, 1, 3]);
        assert_eq!(conn.counts(), &[0, 0, 0, 0], "drained in place");
        assert_eq!(conn.reports(), 0);
        // The drained shard keeps collecting into the same buffer.
        conn.ingest(0).unwrap();
        central.merge_from(&mut conn).unwrap();
        assert_eq!(central.counts(), &[2, 2, 1, 3]);
        // Mismatched widths leave both sides untouched.
        let mut narrow = AggregatorShard::new(2);
        narrow.ingest(1).unwrap();
        assert!(central.merge_from(&mut narrow).is_err());
        assert_eq!(narrow.counts(), &[0, 1], "not drained on error");
        assert_eq!(central.counts(), &[2, 2, 1, 3]);
    }

    #[test]
    fn drained_shards_match_sequential_aggregation_bitwise() {
        let k = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64 * 0.21 - 0.4);
        let reports = [0usize, 4, 2, 2, 1, 3, 4, 4, 0, 2, 1, 1];
        let mut sequential = Aggregator::from_reconstruction(k.clone());
        sequential.ingest_batch(&reports).unwrap();
        // Split across three "connection" shards drained in a different
        // order than they ingested.
        let mut agg = Aggregator::from_reconstruction(k);
        let mut shards = [
            AggregatorShard::new(5),
            AggregatorShard::new(5),
            AggregatorShard::new(5),
        ];
        for (i, &r) in reports.iter().enumerate() {
            shards[i % 3].ingest(r).unwrap();
        }
        for s in shards.iter_mut().rev() {
            agg.merge_from(s).unwrap();
        }
        assert_eq!(agg.counts(), sequential.counts());
        let (a, b) = (agg.estimate(), sequential.estimate());
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
