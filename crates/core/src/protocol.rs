//! The deployment-facing client/aggregator protocol.
//!
//! [`FactorizationMechanism::run`](crate::LdpMechanism::run)
//! simulates a whole population in one call; a real deployment instead
//! has many independent clients, each holding only the (public) strategy
//! matrix, reporting once, and an aggregator that folds reports into a
//! response histogram as they arrive. This module provides exactly that
//! split:
//!
//! * [`Client`] — wraps the public strategy; `respond(my_type)` draws one
//!   randomized report. This is the *only* place user data touches the
//!   pipeline, and the output is a bare output index `o ∈ [m]`.
//! * [`Aggregator`] — accumulates reports incrementally and produces the
//!   unbiased data-vector estimate on demand; estimates can be read at
//!   any time (e.g. for progressive dashboards) without disturbing
//!   collection.
//!
//! ```
//! use ldp_core::protocol::{Aggregator, Client};
//! use ldp_core::{FactorizationMechanism, StrategyMatrix};
//! use ldp_linalg::Matrix;
//! use rand::SeedableRng;
//!
//! let eps = 1.0_f64;
//! let z = eps.exp() + 2.0;
//! let q = Matrix::from_fn(3, 3, |o, u| if o == u { eps.exp() / z } else { 1.0 / z });
//! let mech = FactorizationMechanism::new(
//!     StrategyMatrix::new(q).unwrap(), &Matrix::identity(3), eps).unwrap();
//!
//! let client = Client::new(mech.strategy().clone());
//! let mut aggregator = Aggregator::new(&mech);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! for _ in 0..100 {
//!     aggregator.ingest(client.respond(2, &mut rng)).unwrap();
//! }
//! assert_eq!(aggregator.reports(), 100);
//! let estimate = aggregator.estimate();
//! assert_eq!(estimate.len(), 3);
//! ```

use ldp_linalg::Matrix;
use rand::RngCore;

use crate::sampling::AliasTable;
use crate::{FactorizationMechanism, LdpError, StrategyMatrix};

/// The client side of the protocol: holds the public strategy and
/// produces one randomized report per user.
///
/// Alias tables for every user type are precomputed at construction, so
/// `respond` is O(1) and allocation-free — suitable for embedding in
/// high-volume telemetry paths.
#[derive(Clone, Debug)]
pub struct Client {
    tables: Vec<AliasTable>,
    num_outputs: usize,
}

impl Client {
    /// Builds a client from the deployment's public strategy matrix.
    pub fn new(strategy: StrategyMatrix) -> Self {
        let tables = (0..strategy.domain_size())
            .map(|u| AliasTable::new(&strategy.output_distribution(u)))
            .collect();
        Self { tables, num_outputs: strategy.num_outputs() }
    }

    /// Domain size `n` this client can report over.
    pub fn domain_size(&self) -> usize {
        self.tables.len()
    }

    /// Number of possible reports `m`.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Draws the randomized report for a user of type `user_type`.
    ///
    /// # Panics
    /// Panics if `user_type` is out of range — a misconfigured client
    /// must fail closed rather than submit something unprotected.
    pub fn respond(&self, user_type: usize, rng: &mut dyn RngCore) -> usize {
        self.tables[user_type].sample(rng)
    }
}

/// The analyst side of the protocol: folds reports into the response
/// histogram and post-processes on demand.
#[derive(Clone, Debug)]
pub struct Aggregator {
    counts: Vec<f64>,
    reconstruction: Matrix,
}

impl Aggregator {
    /// Builds an aggregator sharing the mechanism's reconstruction.
    pub fn new(mechanism: &FactorizationMechanism) -> Self {
        Self {
            counts: vec![0.0; mechanism.strategy().num_outputs()],
            reconstruction: mechanism.reconstruction().clone(),
        }
    }

    /// Ingests one client report.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] for an out-of-range report (e.g. a
    /// corrupted or malicious submission) — the report is *not* counted.
    pub fn ingest(&mut self, report: usize) -> Result<(), LdpError> {
        let Some(slot) = self.counts.get_mut(report) else {
            return Err(LdpError::DimensionMismatch {
                context: "client report",
                expected: self.counts.len(),
                actual: report,
            });
        };
        *slot += 1.0;
        Ok(())
    }

    /// Ingests a batch of reports, stopping at the first invalid one.
    ///
    /// # Errors
    /// Propagates the first [`LdpError`] encountered; earlier reports in
    /// the batch remain counted.
    pub fn ingest_batch(&mut self, reports: &[usize]) -> Result<(), LdpError> {
        for &r in reports {
            self.ingest(r)?;
        }
        Ok(())
    }

    /// Number of reports collected so far.
    pub fn reports(&self) -> u64 {
        self.counts.iter().sum::<f64>() as u64
    }

    /// The raw response histogram collected so far.
    pub fn responses(&self) -> crate::ResponseVector {
        crate::ResponseVector::from_counts(self.counts.clone())
    }

    /// The current unbiased data-vector estimate `x̂ = K·y`. Can be called
    /// at any time; collection continues afterwards.
    pub fn estimate(&self) -> Vec<f64> {
        self.reconstruction.matvec(&self.counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mechanism(n: usize, eps: f64) -> FactorizationMechanism {
        let e = eps.exp();
        let z = e + n as f64 - 1.0;
        let q = Matrix::from_fn(n, n, |o, u| if o == u { e / z } else { 1.0 / z });
        FactorizationMechanism::new(
            StrategyMatrix::new(q).unwrap(),
            &Matrix::identity(n),
            eps,
        )
        .unwrap()
    }

    #[test]
    fn protocol_matches_batch_run_distribution() {
        // Collect via the client/aggregator path and via `run`; both are
        // unbiased, so their estimates must agree in expectation.
        let n = 4;
        let mech = mechanism(n, 1.0);
        let client = Client::new(mech.strategy().clone());
        let data = DataVector::from_counts(vec![500.0, 300.0, 150.0, 50.0]);

        let mut rng = StdRng::seed_from_u64(8);
        let trials = 40;
        let mut protocol_mean = vec![0.0; n];
        for _ in 0..trials {
            let mut agg = Aggregator::new(&mech);
            for (u, count) in data.nonzero() {
                for _ in 0..count as u64 {
                    agg.ingest(client.respond(u, &mut rng)).unwrap();
                }
            }
            for (m, v) in protocol_mean.iter_mut().zip(agg.estimate()) {
                *m += v / trials as f64;
            }
        }
        for (mean, truth) in protocol_mean.iter().zip(data.counts()) {
            assert!(
                (mean - truth).abs() < 0.15 * data.total(),
                "{mean} vs {truth}"
            );
        }
    }

    #[test]
    fn aggregator_counts_and_incremental_estimates() {
        let mech = mechanism(3, 1.0);
        let mut agg = Aggregator::new(&mech);
        assert_eq!(agg.reports(), 0);
        agg.ingest_batch(&[0, 1, 1, 2]).unwrap();
        assert_eq!(agg.reports(), 4);
        assert_eq!(agg.responses().counts(), &[1.0, 2.0, 1.0]);
        // Estimate readable mid-collection and total-preserving.
        let est: f64 = agg.estimate().iter().sum();
        assert!((est - 4.0).abs() < 1e-9);
        agg.ingest(0).unwrap();
        assert_eq!(agg.reports(), 5);
    }

    #[test]
    fn aggregator_rejects_corrupted_report() {
        let mech = mechanism(3, 1.0);
        let mut agg = Aggregator::new(&mech);
        agg.ingest(2).unwrap();
        let err = agg.ingest(99);
        assert!(matches!(err, Err(LdpError::DimensionMismatch { .. })));
        // The bad report was not counted; earlier ones were.
        assert_eq!(agg.reports(), 1);
    }

    #[test]
    fn client_reports_in_range_and_biased_to_truth() {
        let mech = mechanism(5, 3.0);
        let client = Client::new(mech.strategy().clone());
        assert_eq!(client.domain_size(), 5);
        assert_eq!(client.num_outputs(), 5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = 0;
        let trials = 2000;
        for _ in 0..trials {
            let r = client.respond(2, &mut rng);
            assert!(r < 5);
            if r == 2 {
                hits += 1;
            }
        }
        // At eps=3, P(truth) = e^3/(e^3+4) ≈ 0.834.
        let freq = hits as f64 / trials as f64;
        assert!((freq - 0.834).abs() < 0.04, "freq {freq}");
    }

    #[test]
    #[should_panic]
    fn client_fails_closed_on_bad_type() {
        let mech = mechanism(3, 1.0);
        let client = Client::new(mech.strategy().clone());
        let mut rng = StdRng::seed_from_u64(0);
        let _ = client.respond(7, &mut rng);
    }
}
