//! Discrete sampling utilities: Vose's alias method.
//!
//! Executing an LDP mechanism draws one output per user from that user's
//! column of the strategy matrix. With hundreds of thousands of users and
//! `m = 4n` outputs, O(1)-per-draw alias tables beat binary search on a
//! cumulative distribution.

use rand::Rng;

/// An alias table for O(1) sampling from a fixed discrete distribution
/// (Vose's method).
///
/// ```
/// use ldp_core::sampling::AliasTable;
/// use rand::SeedableRng;
/// let table = AliasTable::new(&[0.2, 0.5, 0.3]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let draw = table.sample(&mut rng);
/// assert!(draw < 3);
/// ```
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights (they need not sum
    /// to 1; they are normalized internally).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "cannot sample from an empty distribution"
        );
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must be non-negative with positive finite sum"
        );
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob = vec![0.0; n];
        let mut alias = vec![0; n];
        // Scaled probabilities; >1 means "large", <1 means "small".
        let mut scaled: Vec<f64> = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "negative or non-finite weight");
                w * scale
            })
            .collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are numerically 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no categories (never constructed — `new`
    /// panics on empty input — but provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }

    /// Draws `count` samples and accumulates them into a histogram of
    /// length [`AliasTable::len`].
    pub fn sample_histogram<R: Rng + ?Sized>(&self, count: u64, rng: &mut R) -> Vec<f64> {
        let mut hist = vec![0.0; self.len()];
        for _ in 0..count {
            hist[self.sample(rng)] += 1.0;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_category_always_zero() {
        let t = AliasTable::new(&[5.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn degenerate_distribution() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn empirical_frequencies_match() {
        let weights = [0.1, 0.2, 0.3, 0.4];
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let hist = t.sample_histogram(n, &mut rng);
        for (h, w) in hist.iter().zip(&weights) {
            let freq = h / n as f64;
            assert!(
                (freq - w).abs() < 0.01,
                "frequency {freq} too far from weight {w}"
            );
        }
    }

    #[test]
    fn unnormalized_weights_accepted() {
        let t = AliasTable::new(&[2.0, 6.0]); // 25% / 75%
        let mut rng = StdRng::seed_from_u64(4);
        let hist = t.sample_histogram(100_000, &mut rng);
        assert!((hist[1] / 100_000.0 - 0.75).abs() < 0.01);
    }

    #[test]
    fn uniform_weights() {
        let t = AliasTable::new(&[1.0; 10]);
        let mut rng = StdRng::seed_from_u64(5);
        let hist = t.sample_histogram(100_000, &mut rng);
        for h in hist {
            assert!((h / 100_000.0 - 0.1).abs() < 0.01);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive finite sum")]
    fn zero_sum_panics() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
