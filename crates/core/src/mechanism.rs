//! The workload factorization mechanism (Definition 3.2).

use std::sync::Arc;

use ldp_linalg::{psd_max_abs, LinOp, Matrix};
use rand::RngCore;

use crate::protocol::Client;
use crate::sampling::AliasTable;
use crate::{variance, DataVector, Deployable, LdpError, LdpMechanism, StrategyMatrix};

/// Tolerance on the row-space residual when validating that a workload is
/// answerable by a strategy (`W = WQ†Q`, Theorem 3.10).
const ROWSPACE_TOL: f64 = 1e-6;

/// The histogram of randomized responses collected from all users:
/// `y[o] = #{users whose randomized report was output o}`.
#[derive(Clone, Debug, PartialEq)]
pub struct ResponseVector {
    counts: Vec<f64>,
}

impl ResponseVector {
    /// Wraps raw per-output counts.
    pub fn from_counts(counts: Vec<f64>) -> Self {
        Self { counts }
    }

    /// Number of possible outputs `m`.
    #[inline]
    pub fn num_outputs(&self) -> usize {
        self.counts.len()
    }

    /// Total reports collected (equals the number of users).
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// The counts as a slice.
    #[inline]
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }
}

/// The workload factorization mechanism `M_{V,Q}(x) = V·M_Q(x)`
/// (Definition 3.2), stored via the data-vector estimator `K` with
/// `V = W·K`.
///
/// Construction takes a validated [`StrategyMatrix`], computes the optimal
/// reconstruction of Theorem 3.10, and verifies the workload (given by its
/// Gram matrix) lies in the strategy's row space, so unbiased estimation is
/// possible.
///
/// ```
/// use ldp_core::{DataVector, FactorizationMechanism, LdpMechanism, StrategyMatrix};
/// use ldp_linalg::Matrix;
/// use rand::SeedableRng;
///
/// // Randomized response on a 3-type domain, Histogram workload.
/// let eps = 1.0_f64;
/// let z = eps.exp() + 2.0;
/// let q = Matrix::from_fn(3, 3, |o, u| if o == u { eps.exp() / z } else { 1.0 / z });
/// let strategy = StrategyMatrix::new(q).unwrap();
/// let gram = Matrix::identity(3);
/// let mech = FactorizationMechanism::new(strategy, &gram, eps).unwrap();
///
/// let data = DataVector::from_counts(vec![600.0, 300.0, 100.0]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let estimate = mech.run(&data, &mut rng);
/// assert_eq!(estimate.len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct FactorizationMechanism {
    strategy: StrategyMatrix,
    /// Data-vector estimator `K = (QᵀD⁻¹Q)†QᵀD⁻¹` (`n × m`).
    k: Matrix,
    /// Per-user-type alias tables over the strategy columns, built once at
    /// construction and shared (via `Arc`) with every [`Client`] handed
    /// out — `collect`/`run` never rebuild them.
    tables: Arc<[AliasTable]>,
    epsilon: f64,
    name: String,
}

impl FactorizationMechanism {
    /// Builds the mechanism from a strategy, validating ε-LDP and that the
    /// workload (Gram matrix `gram`) is answerable.
    ///
    /// # Errors
    /// * [`LdpError::PrivacyViolation`] if the strategy exceeds `epsilon`.
    /// * [`LdpError::WorkloadNotSupported`] if `W` is not in the row space
    ///   of the strategy.
    /// * [`LdpError::DimensionMismatch`] if `gram` is not `n × n`.
    pub fn new(strategy: StrategyMatrix, gram: &dyn LinOp, epsilon: f64) -> Result<Self, LdpError> {
        strategy.check_ldp(epsilon)?;
        Self::new_unchecked_privacy(strategy, gram, epsilon)
    }

    /// Like [`FactorizationMechanism::new`] but trusts the caller on the
    /// privacy budget (used by constructions whose budget is known by
    /// derivation, e.g. closed-form baselines, avoiding an O(mn²) check).
    pub fn new_unchecked_privacy(
        strategy: StrategyMatrix,
        gram: &dyn LinOp,
        epsilon: f64,
    ) -> Result<Self, LdpError> {
        if gram.rows() != strategy.domain_size() || !gram.is_square() {
            return Err(LdpError::DimensionMismatch {
                context: "workload Gram matrix",
                expected: strategy.domain_size(),
                actual: gram.rows(),
            });
        }
        let k = variance::optimal_reconstruction(&strategy);
        let residual = variance::rowspace_residual(&strategy, &k, gram);
        // For a PSD Gram the largest |entry| sits on the diagonal, which
        // structured operators expose without materializing.
        let scale = psd_max_abs(gram).max(1.0);
        if residual > ROWSPACE_TOL * scale {
            return Err(LdpError::WorkloadNotSupported { residual });
        }
        let tables: Arc<[AliasTable]> = (0..strategy.domain_size())
            .map(|u| AliasTable::new(&strategy.output_distribution(u)))
            .collect();
        Ok(Self {
            strategy,
            k,
            tables,
            epsilon,
            name: "Factorization".to_string(),
        })
    }

    /// Sets the display name used in reports (e.g. "Optimized",
    /// "Randomized Response").
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The strategy matrix `Q`.
    pub fn strategy(&self) -> &StrategyMatrix {
        &self.strategy
    }

    /// The data-vector estimator `K` (`n × m`) with `V = W·K`.
    pub fn reconstruction(&self) -> &Matrix {
        &self.k
    }

    /// A [`Client`] sharing this mechanism's precomputed alias tables —
    /// cheap to call (an `Arc` clone, no table construction) and safe to
    /// hand to any number of threads.
    pub fn client(&self) -> Client {
        Client::from_shared(Arc::clone(&self.tables), self.strategy.num_outputs())
    }

    /// Executes the local protocol: every user of type `u` draws one output
    /// from column `q_u`. Returns the aggregated response histogram.
    ///
    /// Counts are rounded to whole users (fractional expected counts are
    /// sampled as their floor plus a Bernoulli remainder would be overkill;
    /// analytic code paths never call this).
    pub fn collect(&self, data: &DataVector, rng: &mut dyn RngCore) -> ResponseVector {
        assert_eq!(
            data.domain_size(),
            self.strategy.domain_size(),
            "data domain must match mechanism domain"
        );
        let m = self.strategy.num_outputs();
        let mut y = vec![0.0; m];
        for (u, count) in data.nonzero() {
            let users = count.round() as u64;
            if users == 0 {
                continue;
            }
            let hist = self.tables[u].sample_histogram(users, rng);
            for (yo, h) in y.iter_mut().zip(hist) {
                *yo += h;
            }
        }
        ResponseVector::from_counts(y)
    }

    /// Post-processes a response vector into the unbiased data-vector
    /// estimate `x̂ = K·y`. Workload answers are `W·x̂`.
    pub fn estimate(&self, responses: &ResponseVector) -> Vec<f64> {
        assert_eq!(responses.num_outputs(), self.strategy.num_outputs());
        self.k.matvec(responses.counts())
    }

    /// The expected response histogram `E[y] = Q·x` — handy for tests and
    /// debugging.
    pub fn expected_responses(&self, data: &DataVector) -> Vec<f64> {
        self.strategy.matrix().matvec(data.counts())
    }
}

impl LdpMechanism for FactorizationMechanism {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn domain_size(&self) -> usize {
        self.strategy.domain_size()
    }

    fn variance_profile(&self, gram: &dyn LinOp) -> Vec<f64> {
        variance::variance_profile(&self.strategy, &self.k, gram)
    }

    fn run(&self, data: &DataVector, rng: &mut dyn RngCore) -> Vec<f64> {
        let y = self.collect(data, rng);
        self.estimate(&y)
    }
}

impl Deployable for FactorizationMechanism {
    fn client(&self) -> Client {
        FactorizationMechanism::client(self)
    }

    fn reconstruction_matrix(&self) -> &Matrix {
        &self.k
    }

    fn num_outputs(&self) -> usize {
        self.strategy.num_outputs()
    }

    fn strategy(&self) -> Option<&StrategyMatrix> {
        Some(FactorizationMechanism::strategy(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rr_mechanism(n: usize, eps: f64) -> FactorizationMechanism {
        let e = eps.exp();
        let z = e + n as f64 - 1.0;
        let q = Matrix::from_fn(n, n, |o, u| if o == u { e / z } else { 1.0 / z });
        let strategy = StrategyMatrix::new(q).unwrap();
        FactorizationMechanism::new(strategy, &Matrix::identity(n), eps).unwrap()
    }

    #[test]
    fn rejects_strategy_exceeding_budget() {
        let n = 3;
        let e = 2.0_f64.exp();
        let z = e + n as f64 - 1.0;
        let q = Matrix::from_fn(n, n, |o, u| if o == u { e / z } else { 1.0 / z });
        let s = StrategyMatrix::new(q).unwrap();
        let err = FactorizationMechanism::new(s, &Matrix::identity(n), 1.0);
        assert!(matches!(err, Err(LdpError::PrivacyViolation { .. })));
    }

    #[test]
    fn rejects_unanswerable_workload() {
        // Rank-1 strategy cannot answer the Histogram workload.
        let q = Matrix::filled(4, 4, 0.25);
        let s = StrategyMatrix::new(q).unwrap();
        let err = FactorizationMechanism::new(s, &Matrix::identity(4), 1.0);
        assert!(matches!(err, Err(LdpError::WorkloadNotSupported { .. })));
    }

    #[test]
    fn rejects_wrong_gram_dimension() {
        let mech = rr_mechanism(3, 1.0);
        let s = mech.strategy().clone();
        let err = FactorizationMechanism::new(s, &Matrix::identity(4), 1.0);
        assert!(matches!(err, Err(LdpError::DimensionMismatch { .. })));
    }

    #[test]
    fn estimate_is_unbiased_in_expectation() {
        // x̂ = K·E[y] = K·Q·x must equal x exactly for full-rank strategies.
        let mech = rr_mechanism(5, 1.0);
        let data = DataVector::from_counts(vec![10.0, 20.0, 5.0, 0.0, 0.0]);
        let expected_y = mech.expected_responses(&data);
        let xhat = mech.k.matvec(&expected_y);
        for (a, b) in xhat.iter().zip(data.counts()) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn collect_preserves_user_count() {
        let mech = rr_mechanism(4, 1.0);
        let data = DataVector::from_counts(vec![100.0, 50.0, 25.0, 25.0]);
        let mut rng = StdRng::seed_from_u64(9);
        let y = mech.collect(&data, &mut rng);
        assert_eq!(y.total(), 200.0);
        assert_eq!(y.num_outputs(), 4);
    }

    #[test]
    fn monte_carlo_variance_matches_analytic() {
        // Empirical total workload variance over many runs should be close
        // to the analytic Theorem 3.4 value (Histogram workload, so the
        // workload error is the data-vector error).
        let n = 4;
        let eps = 1.0;
        let mech = rr_mechanism(n, eps);
        let gram = Matrix::identity(n);
        let data = DataVector::from_counts(vec![400.0, 300.0, 200.0, 100.0]);
        let analytic = mech.data_variance(&gram, &data);

        let mut rng = StdRng::seed_from_u64(1234);
        let trials = 600;
        let mut total_sq_err = 0.0;
        for _ in 0..trials {
            let xhat = mech.run(&data, &mut rng);
            let err: f64 = xhat
                .iter()
                .zip(data.counts())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            total_sq_err += err;
        }
        let empirical = total_sq_err / trials as f64;
        let rel = (empirical - analytic).abs() / analytic;
        assert!(
            rel < 0.15,
            "empirical {empirical} vs analytic {analytic} (rel {rel})"
        );
    }

    #[test]
    fn run_against_prefix_workload() {
        // Non-identity gram: mechanism still unbiased; variance finite.
        let n = 4;
        let w = Matrix::from_fn(n, n, |i, j| if j <= i { 1.0 } else { 0.0 });
        let gram = w.gram();
        let e = 1.0_f64.exp();
        let z = e + n as f64 - 1.0;
        let q = Matrix::from_fn(n, n, |o, u| if o == u { e / z } else { 1.0 / z });
        let s = StrategyMatrix::new(q).unwrap();
        let mech = FactorizationMechanism::new(s, &gram, 1.0).unwrap();
        let profile = mech.variance_profile(&gram);
        assert_eq!(profile.len(), n);
        assert!(profile.iter().all(|t| t.is_finite() && *t > 0.0));
    }

    #[test]
    fn with_name_changes_reporting_name() {
        let mech = rr_mechanism(3, 1.0).with_name("Randomized Response");
        assert_eq!(mech.name(), "Randomized Response");
    }
}
