//! The common interface implemented by every LDP mechanism in the
//! workspace — the optimized factorization mechanism and all baselines.

use ldp_linalg::{LinOp, Matrix};
use rand::RngCore;

use crate::{complexity, variance, DataVector};

/// A mechanism for answering linear query workloads under ε-LDP.
///
/// Implementations expose two things:
///
/// 1. **Analysis** — [`LdpMechanism::variance_profile`] returns the exact
///    per-user-type variance contribution `T_u` on a workload given by its
///    Gram matrix `G = WᵀW` (Theorem 3.4). All of the paper's evaluation
///    metrics (worst/average/data-dependent variance, normalized variance,
///    sample complexity) derive from this profile and are provided as
///    default methods.
/// 2. **Execution** — [`LdpMechanism::run`] executes the privacy protocol
///    on a concrete dataset and returns an unbiased estimate `x̂` of the
///    data vector; workload answers are then `W·x̂`, evaluated by the
///    workload object (possibly implicitly).
pub trait LdpMechanism {
    /// Human-readable mechanism name as used in the paper's figures.
    fn name(&self) -> String;

    /// The privacy budget ε this instance was built for.
    fn epsilon(&self) -> f64;

    /// Domain size `n` the mechanism operates on.
    fn domain_size(&self) -> usize;

    /// Per-user-type variance `T_u` on the workload with Gram operator
    /// `gram` (Theorem 3.4). `T_u` is the additional total workload
    /// variance contributed by a single user of type `u`. Accepts any
    /// [`LinOp`] — a dense [`ldp_linalg::Matrix`] or a structured
    /// workload Gram — and never requires `n × n` materialization.
    fn variance_profile(&self, gram: &dyn LinOp) -> Vec<f64>;

    /// Executes the mechanism on `data`, returning an unbiased estimate of
    /// the data vector (length `n`).
    fn run(&self, data: &DataVector, rng: &mut dyn RngCore) -> Vec<f64>;

    /// Worst-case total variance for `n_users` users (Corollary 3.5).
    fn worst_case_variance(&self, gram: &dyn LinOp, n_users: f64) -> f64 {
        variance::worst_case_variance(&self.variance_profile(gram), n_users)
    }

    /// Average-case total variance for `n_users` users (Corollary 3.6).
    fn average_case_variance(&self, gram: &dyn LinOp, n_users: f64) -> f64 {
        variance::average_case_variance(&self.variance_profile(gram), n_users)
    }

    /// Exact total variance on a concrete dataset (Theorem 3.4).
    fn data_variance(&self, gram: &dyn LinOp, data: &DataVector) -> f64 {
        variance::data_variance(&self.variance_profile(gram), data)
    }

    /// Worst-case sample complexity at normalized variance `alpha` on a
    /// `num_queries`-query workload (Corollary 5.4) — the paper's primary
    /// evaluation metric with `alpha = 0.01`.
    fn sample_complexity(&self, gram: &dyn LinOp, num_queries: usize, alpha: f64) -> f64 {
        complexity::sample_complexity(&self.variance_profile(gram), num_queries, alpha)
    }

    /// Data-dependent sample complexity (Section 6.4): worst case replaced
    /// by the variance under the dataset's empirical distribution.
    fn data_sample_complexity(
        &self,
        gram: &dyn LinOp,
        data: &DataVector,
        num_queries: usize,
        alpha: f64,
    ) -> f64 {
        complexity::data_sample_complexity(
            &self.variance_profile(gram),
            &data.normalized(),
            num_queries,
            alpha,
        )
    }
}

/// A mechanism that can be *deployed*: split into any number of
/// [`Client`](crate::protocol::Client)s reporting independently and
/// [`AggregatorShard`](crate::protocol::AggregatorShard)s /
/// [`Aggregator`](crate::protocol::Aggregator)s folding reports into an
/// estimate — the real-world counterpart of the single-call simulation
/// [`LdpMechanism::run`].
///
/// Implemented by [`FactorizationMechanism`](crate::FactorizationMechanism),
/// which also covers every closed-form baseline in `ldp-mechanisms`
/// (randomized response, Hadamard, hierarchical, Fourier, RAPPOR, subset
/// selection): each of those is constructed *as* a factorization
/// mechanism over its Table-1 strategy matrix. Mechanisms that do not
/// emit discrete strategy-matrix reports (e.g. the noise-adding local
/// matrix mechanism) are intentionally not deployable through this
/// protocol.
///
/// Implementations must hand out clients that are cheap to clone and safe
/// to share across threads, so a deployment can serve millions of users
/// concurrently.
pub trait Deployable: LdpMechanism {
    /// A client bound to this mechanism's public strategy. Must be cheap
    /// (no per-call table construction) and `Send + Sync`.
    fn client(&self) -> crate::protocol::Client;

    /// The data-vector estimator `K` (`n × m`, Theorem 3.10) aggregators
    /// use to post-process the response histogram.
    fn reconstruction_matrix(&self) -> &Matrix;

    /// Number of possible reports `m` (rows of the strategy matrix).
    fn num_outputs(&self) -> usize;

    /// The public strategy matrix `Q`, for mechanisms that are
    /// strategy-based (every factorization mechanism is). Per-query
    /// variance analysis — e.g. the error bar on a single *ad-hoc* query
    /// answer — needs the per-type output distributions, which only `Q`
    /// carries; mechanisms that cannot expose one return `None` and
    /// forgo that analysis.
    fn strategy(&self) -> Option<&crate::StrategyMatrix> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_linalg::Matrix;

    /// A trivial mechanism used to exercise the default methods: reports
    /// nothing and estimates uniformly (constant profile).
    struct Dummy {
        n: usize,
    }

    impl LdpMechanism for Dummy {
        fn name(&self) -> String {
            "Dummy".into()
        }
        fn epsilon(&self) -> f64 {
            1.0
        }
        fn domain_size(&self) -> usize {
            self.n
        }
        fn variance_profile(&self, _gram: &dyn LinOp) -> Vec<f64> {
            (0..self.n).map(|u| (u + 1) as f64).collect()
        }
        fn run(&self, data: &DataVector, _rng: &mut dyn RngCore) -> Vec<f64> {
            vec![data.total() / self.n as f64; self.n]
        }
    }

    #[test]
    fn default_methods_consistent() {
        let d = Dummy { n: 4 };
        let gram = Matrix::identity(4);
        // Profile [1,2,3,4]: worst 4, avg 2.5.
        assert_eq!(d.worst_case_variance(&gram, 10.0), 40.0);
        assert_eq!(d.average_case_variance(&gram, 10.0), 25.0);
        let data = DataVector::from_counts(vec![1.0, 0.0, 0.0, 3.0]);
        assert_eq!(d.data_variance(&gram, &data), 1.0 + 12.0);
        let sc = d.sample_complexity(&gram, 8, 0.01);
        assert!((sc - 4.0 / 0.08).abs() < 1e-12);
        let dsc = d.data_sample_complexity(&gram, &data, 8, 0.01);
        assert!(dsc <= sc);
    }

    #[test]
    fn trait_is_object_safe() {
        let b: Box<dyn LdpMechanism> = Box::new(Dummy { n: 2 });
        assert_eq!(b.name(), "Dummy");
        assert_eq!(b.domain_size(), 2);
    }
}
