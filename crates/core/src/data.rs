//! The data vector: a histogram of user types (Definition 2.1).

use crate::LdpError;

/// A vector of counts indexed by user type, `x[u] = #{users of type u}`
/// (Definition 2.1 of the paper).
///
/// Counts are stored as `f64` so normalized distributions and fractional
/// expected counts can use the same type in analytical code paths.
///
/// ```
/// use ldp_core::DataVector;
/// // Example 2.2: student grades A..F with counts 10, 20, 5, 0, 0.
/// let x = DataVector::from_counts(vec![10.0, 20.0, 5.0, 0.0, 0.0]);
/// assert_eq!(x.total(), 35.0);
/// assert_eq!(x.domain_size(), 5);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DataVector {
    counts: Vec<f64>,
}

impl DataVector {
    /// Wraps a vector of per-type counts.
    ///
    /// # Panics
    /// Panics if any count is negative or non-finite.
    pub fn from_counts(counts: Vec<f64>) -> Self {
        assert!(
            counts.iter().all(|c| c.is_finite() && *c >= 0.0),
            "counts must be non-negative and finite"
        );
        Self { counts }
    }

    /// Builds the histogram of a list of user types over a domain of size
    /// `n` (each user is an index `u ∈ 0..n`).
    ///
    /// # Errors
    /// Returns [`LdpError::DimensionMismatch`] if any user index is out of
    /// range.
    pub fn from_users(users: &[usize], n: usize) -> Result<Self, LdpError> {
        let mut counts = vec![0.0; n];
        for &u in users {
            if u >= n {
                return Err(LdpError::DimensionMismatch {
                    context: "user type index",
                    expected: n,
                    actual: u,
                });
            }
            counts[u] += 1.0;
        }
        Ok(Self { counts })
    }

    /// A uniform data vector with `total` users spread evenly over `n`
    /// types — the average-case input of Corollary 3.6.
    pub fn uniform(n: usize, total: f64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        Self {
            counts: vec![total / n as f64; n],
        }
    }

    /// A point-mass data vector: all `total` users have type `u` — the
    /// worst-case input of Corollary 3.5.
    pub fn point_mass(n: usize, u: usize, total: f64) -> Self {
        assert!(u < n, "type index out of range");
        let mut counts = vec![0.0; n];
        counts[u] = total;
        Self { counts }
    }

    /// Number of user types `n`.
    #[inline]
    pub fn domain_size(&self) -> usize {
        self.counts.len()
    }

    /// Total number of users `N = Σ_u x_u`.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// The counts as a slice.
    #[inline]
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Consumes the vector, returning the raw counts.
    pub fn into_counts(self) -> Vec<f64> {
        self.counts
    }

    /// The empirical distribution `x / N`. Returns the uniform distribution
    /// if the data vector is empty of users (`N = 0`).
    pub fn normalized(&self) -> Vec<f64> {
        let n_users = self.total();
        if n_users == 0.0 {
            return vec![1.0 / self.counts.len() as f64; self.counts.len()];
        }
        self.counts.iter().map(|c| c / n_users).collect()
    }

    /// Iterates over `(type, count)` pairs with non-zero count.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.counts
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, c)| *c > 0.0)
    }

    /// Rounds each count to the nearest integer, for use after sampling
    /// expectations. Negative results are clamped to zero.
    pub fn rounded(&self) -> DataVector {
        DataVector::from_counts(self.counts.iter().map(|c| c.round().max(0.0)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_users_counts_correctly() {
        let x = DataVector::from_users(&[0, 1, 1, 2, 1], 4).unwrap();
        assert_eq!(x.counts(), &[1.0, 3.0, 1.0, 0.0]);
        assert_eq!(x.total(), 5.0);
    }

    #[test]
    fn from_users_rejects_out_of_range() {
        assert!(DataVector::from_users(&[5], 4).is_err());
    }

    #[test]
    fn uniform_and_point_mass() {
        let u = DataVector::uniform(4, 100.0);
        assert_eq!(u.counts(), &[25.0; 4]);
        let p = DataVector::point_mass(4, 2, 100.0);
        assert_eq!(p.counts(), &[0.0, 0.0, 100.0, 0.0]);
    }

    #[test]
    fn normalized_sums_to_one() {
        let x = DataVector::from_counts(vec![10.0, 20.0, 5.0, 0.0, 0.0]);
        let p = x.normalized();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-15);
        assert!((p[1] - 20.0 / 35.0).abs() < 1e-15);
    }

    #[test]
    fn normalized_of_empty_data_is_uniform() {
        let x = DataVector::from_counts(vec![0.0; 4]);
        assert_eq!(x.normalized(), vec![0.25; 4]);
    }

    #[test]
    fn nonzero_iterator_skips_zeros() {
        let x = DataVector::from_counts(vec![1.0, 0.0, 2.0]);
        let nz: Vec<_> = x.nonzero().collect();
        assert_eq!(nz, vec![(0, 1.0), (2, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_count_panics() {
        let _ = DataVector::from_counts(vec![-1.0]);
    }

    #[test]
    fn rounded_clamps_and_rounds() {
        let x = DataVector::from_counts(vec![1.4, 2.6, 0.0]);
        assert_eq!(x.rounded().counts(), &[1.0, 3.0, 0.0]);
    }
}
