//! Strategy matrices: mechanisms as conditional probability tables
//! (Proposition 2.6).

use ldp_linalg::Matrix;

use crate::LdpError;

/// Tolerance for column-stochasticity checks. Strategy matrices coming out
/// of floating point projections sum to 1 up to accumulated rounding.
const STOCHASTIC_TOL: f64 = 1e-8;

/// An `m × n` strategy matrix `Q` with `Q[o, u] = Pr[M(u) = o]`
/// (Proposition 2.6 of the paper).
///
/// Construction validates the probability-simplex conditions (entries
/// non-negative, columns summing to 1). The ε-LDP condition is checked
/// separately via [`StrategyMatrix::epsilon`] /
/// [`StrategyMatrix::check_ldp`] because a given matrix satisfies a
/// continuum of budgets.
///
/// ```
/// use ldp_core::StrategyMatrix;
/// use ldp_linalg::Matrix;
/// // Binary randomized response at eps = ln 3.
/// let q = Matrix::from_rows(&[&[0.75, 0.25], &[0.25, 0.75]]);
/// let s = StrategyMatrix::new(q).unwrap();
/// assert!((s.epsilon() - 3.0_f64.ln()).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct StrategyMatrix {
    q: Matrix,
}

impl StrategyMatrix {
    /// Validates and wraps a column-stochastic matrix.
    ///
    /// # Errors
    /// * [`LdpError::InvalidProbability`] for negative/non-finite entries.
    /// * [`LdpError::ColumnNotStochastic`] if a column does not sum to 1.
    pub fn new(q: Matrix) -> Result<Self, LdpError> {
        for i in 0..q.rows() {
            for j in 0..q.cols() {
                let v = q[(i, j)];
                if !v.is_finite() || v < 0.0 {
                    return Err(LdpError::InvalidProbability {
                        row: i,
                        column: j,
                        value: v,
                    });
                }
            }
        }
        let sums = q.col_sums();
        for (j, s) in sums.iter().enumerate() {
            if (s - 1.0).abs() > STOCHASTIC_TOL {
                return Err(LdpError::ColumnNotStochastic { column: j, sum: *s });
            }
        }
        Ok(Self { q })
    }

    /// Wraps a matrix after renormalizing each column to sum to exactly 1.
    /// Intended for matrices built from closed-form proportional entries
    /// (as in Table 1 of the paper) where the normalizer is implicit.
    ///
    /// # Errors
    /// [`LdpError::InvalidProbability`] for negative entries or an
    /// all-zero column.
    pub fn from_unnormalized(mut q: Matrix) -> Result<Self, LdpError> {
        let sums = q.col_sums();
        for (j, s) in sums.iter().enumerate() {
            if *s <= 0.0 || !s.is_finite() {
                return Err(LdpError::InvalidProbability {
                    row: 0,
                    column: j,
                    value: *s,
                });
            }
        }
        for i in 0..q.rows() {
            for j in 0..q.cols() {
                q[(i, j)] /= sums[j];
            }
        }
        Self::new(q)
    }

    /// Number of outputs `m = |O|`.
    #[inline]
    pub fn num_outputs(&self) -> usize {
        self.q.rows()
    }

    /// Number of user types `n = |U|`.
    #[inline]
    pub fn domain_size(&self) -> usize {
        self.q.cols()
    }

    /// The underlying matrix.
    #[inline]
    pub fn matrix(&self) -> &Matrix {
        &self.q
    }

    /// Consumes the wrapper, returning the matrix.
    pub fn into_matrix(self) -> Matrix {
        self.q
    }

    /// The diagonal of `D_Q = Diag(Q·1)` — the row sums of `Q`
    /// (Theorem 3.9). Under the simplex constraint these sum to `n`.
    pub fn row_sums(&self) -> Vec<f64> {
        self.q.row_sums()
    }

    /// The smallest ε such that this matrix is ε-LDP: the maximum over
    /// outputs `o` of `ln(max_u Q[o,u] / min_u Q[o,u])`.
    ///
    /// Returns `f64::INFINITY` if some output has both zero and non-zero
    /// probability across user types (no finite budget suffices). Rows that
    /// are identically zero are ignored — they correspond to outputs that
    /// never occur and can be dropped without changing the mechanism.
    pub fn epsilon(&self) -> f64 {
        let mut eps = 0.0_f64;
        for o in 0..self.q.rows() {
            let row = self.q.row(o);
            let max = row.iter().copied().fold(f64::MIN, f64::max);
            let min = row.iter().copied().fold(f64::MAX, f64::min);
            if max == 0.0 {
                continue; // output never occurs
            }
            if min == 0.0 {
                return f64::INFINITY;
            }
            eps = eps.max((max / min).ln());
        }
        eps
    }

    /// Checks the matrix satisfies `epsilon`-LDP up to a small relative
    /// slack (covers strategies produced by floating point projections
    /// whose ratio touches `e^ε` exactly).
    ///
    /// # Errors
    /// [`LdpError::PrivacyViolation`] with the actual budget on failure,
    /// or [`LdpError::InvalidEpsilon`] for a non-positive budget.
    pub fn check_ldp(&self, epsilon: f64) -> Result<(), LdpError> {
        if epsilon.is_nan() || epsilon <= 0.0 || !epsilon.is_finite() {
            return Err(LdpError::InvalidEpsilon(epsilon));
        }
        let actual = self.epsilon();
        if actual <= epsilon * (1.0 + 1e-9) + 1e-12 {
            Ok(())
        } else {
            Err(LdpError::PrivacyViolation {
                requested_epsilon: epsilon,
                actual_epsilon: actual,
            })
        }
    }

    /// Column `u` of `Q` — the output distribution of user type `u`.
    pub fn output_distribution(&self, u: usize) -> Vec<f64> {
        self.q.col(u)
    }

    /// Removes all-zero rows (outputs that never occur under any input).
    /// The paper notes these can be dropped without changing the mechanism
    /// and they would otherwise make `D_Q` singular.
    pub fn drop_unused_outputs(self) -> StrategyMatrix {
        let keep: Vec<usize> = (0..self.q.rows())
            .filter(|&o| self.q.row(o).iter().any(|&v| v > 0.0))
            .collect();
        if keep.len() == self.q.rows() {
            return self;
        }
        let mut q = Matrix::zeros(keep.len(), self.q.cols());
        for (new_o, &old_o) in keep.iter().enumerate() {
            q.row_mut(new_o).copy_from_slice(self.q.row(old_o));
        }
        StrategyMatrix { q }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rr_matrix(n: usize, eps: f64) -> Matrix {
        // Example 2.7: diag ∝ e^eps, off-diag ∝ 1.
        let e = eps.exp();
        let z = e + (n as f64) - 1.0;
        Matrix::from_fn(n, n, |o, u| if o == u { e / z } else { 1.0 / z })
    }

    #[test]
    fn randomized_response_is_valid() {
        let s = StrategyMatrix::new(rr_matrix(5, 1.0)).unwrap();
        assert_eq!(s.num_outputs(), 5);
        assert_eq!(s.domain_size(), 5);
        assert!((s.epsilon() - 1.0).abs() < 1e-12);
        s.check_ldp(1.0).unwrap();
        s.check_ldp(2.0).unwrap();
        assert!(matches!(
            s.check_ldp(0.5),
            Err(LdpError::PrivacyViolation { .. })
        ));
    }

    #[test]
    fn rejects_negative_entries() {
        let q = Matrix::from_rows(&[&[1.2, 0.5], &[-0.2, 0.5]]);
        assert!(matches!(
            StrategyMatrix::new(q),
            Err(LdpError::InvalidProbability {
                row: 1,
                column: 0,
                ..
            })
        ));
    }

    #[test]
    fn rejects_non_stochastic_columns() {
        let q = Matrix::from_rows(&[&[0.5, 0.5], &[0.4, 0.5]]);
        assert!(matches!(
            StrategyMatrix::new(q),
            Err(LdpError::ColumnNotStochastic { column: 0, .. })
        ));
    }

    #[test]
    fn from_unnormalized_normalizes() {
        // Table 1 RR entries: e^eps and 1 without the normalizer.
        let e = 1.0_f64.exp();
        let q = Matrix::from_fn(3, 3, |o, u| if o == u { e } else { 1.0 });
        let s = StrategyMatrix::from_unnormalized(q).unwrap();
        for j in 0..3 {
            let sum: f64 = s.output_distribution(j).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        assert!((s.epsilon() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_infinite_when_row_mixes_zero_nonzero() {
        let q = Matrix::from_rows(&[&[1.0, 0.5], &[0.0, 0.5]]);
        let s = StrategyMatrix::new(q).unwrap();
        assert!(s.epsilon().is_infinite());
    }

    #[test]
    fn zero_rows_ignored_for_epsilon_and_droppable() {
        let q = Matrix::from_rows(&[&[0.75, 0.25], &[0.25, 0.75], &[0.0, 0.0]]);
        // Columns sum to 1 even with the dead output present.
        let s = StrategyMatrix::new(q).unwrap();
        assert!((s.epsilon() - 3.0_f64.ln()).abs() < 1e-12);
        let s = s.drop_unused_outputs();
        assert_eq!(s.num_outputs(), 2);
    }

    #[test]
    fn row_sums_total_n() {
        let s = StrategyMatrix::new(rr_matrix(7, 2.0)).unwrap();
        let total: f64 = s.row_sums().iter().sum();
        assert!((total - 7.0).abs() < 1e-10);
    }

    #[test]
    fn check_ldp_rejects_bad_epsilon() {
        let s = StrategyMatrix::new(rr_matrix(3, 1.0)).unwrap();
        assert!(matches!(s.check_ldp(0.0), Err(LdpError::InvalidEpsilon(_))));
        assert!(matches!(
            s.check_ldp(f64::NAN),
            Err(LdpError::InvalidEpsilon(_))
        ));
    }
}
