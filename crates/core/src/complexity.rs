//! Normalized variance and sample complexity (Section 5.2 of the paper).
//!
//! The paper's primary evaluation metric is *sample complexity*: the number
//! of users needed to reach a target normalized variance `α`
//! (Corollary 5.4, used with `α = 0.01` in Section 6). For a mechanism with
//! per-user-type variance profile `T_u` (see
//! [`crate::variance::variance_profile`]) on a workload of `p` queries:
//!
//! ```text
//! L_norm = max_u T_u / (p·N)          (Corollary 5.3)
//! N(α)   = max_u T_u / (p·α)          (Corollary 5.4)
//! ```
//!
//! Section 6.4 replaces the worst case `max_u T_u` with the data-dependent
//! average `Σ_u p̂_u T_u` under the empirical distribution `p̂ = x/N`.

/// Normalized worst-case variance `L_norm` (Corollary 5.3) for `n_users`
/// users on a `num_queries`-query workload.
///
/// # Panics
/// Panics if `num_queries == 0` or `n_users <= 0`.
pub fn normalized_variance(profile: &[f64], num_queries: usize, n_users: f64) -> f64 {
    assert!(num_queries > 0, "workload must contain at least one query");
    assert!(n_users > 0.0, "n_users must be positive");
    let worst = profile.iter().copied().fold(0.0, f64::max);
    worst / (num_queries as f64 * n_users)
}

/// Worst-case sample complexity `N(α)` (Corollary 5.4): users required so
/// the normalized variance is at most `alpha`.
///
/// # Panics
/// Panics if `alpha <= 0` or `num_queries == 0`.
pub fn sample_complexity(profile: &[f64], num_queries: usize, alpha: f64) -> f64 {
    assert!(alpha > 0.0, "target accuracy must be positive");
    assert!(num_queries > 0, "workload must contain at least one query");
    let worst = profile.iter().copied().fold(0.0, f64::max);
    worst / (num_queries as f64 * alpha)
}

/// Data-dependent sample complexity (Section 6.4): Corollary 5.4 with the
/// worst case replaced by the exact variance under the normalized data
/// distribution `shape` (entries sum to 1).
///
/// # Panics
/// Panics if `shape.len() != profile.len()`, `alpha <= 0`, or
/// `num_queries == 0`.
pub fn data_sample_complexity(
    profile: &[f64],
    shape: &[f64],
    num_queries: usize,
    alpha: f64,
) -> f64 {
    assert!(alpha > 0.0, "target accuracy must be positive");
    assert!(num_queries > 0, "workload must contain at least one query");
    assert_eq!(shape.len(), profile.len(), "shape/profile length mismatch");
    let weighted: f64 = profile.iter().zip(shape).map(|(t, p)| t * p).sum();
    weighted / (num_queries as f64 * alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_complexity_scales_inversely_with_alpha() {
        let profile = [2.0, 4.0, 1.0];
        let n1 = sample_complexity(&profile, 10, 0.01);
        let n2 = sample_complexity(&profile, 10, 0.02);
        assert!((n1 / n2 - 2.0).abs() < 1e-12);
        assert!((n1 - 4.0 / (10.0 * 0.01)).abs() < 1e-12);
    }

    #[test]
    fn normalized_variance_consistent_with_sample_complexity() {
        // At N = N(α), the normalized variance equals α.
        let profile = [3.0, 7.0];
        let alpha = 0.05;
        let n = sample_complexity(&profile, 4, alpha);
        let nv = normalized_variance(&profile, 4, n);
        assert!((nv - alpha).abs() < 1e-12);
    }

    #[test]
    fn data_complexity_never_exceeds_worst_case() {
        let profile = [1.0, 5.0, 2.0];
        let shape = [0.5, 0.25, 0.25];
        let worst = sample_complexity(&profile, 3, 0.01);
        let data = data_sample_complexity(&profile, &shape, 3, 0.01);
        assert!(data <= worst);
        // Point mass on the worst type attains the worst case.
        let attained = data_sample_complexity(&profile, &[0.0, 1.0, 0.0], 3, 0.01);
        assert!((attained - worst).abs() < 1e-12);
    }

    /// Example 5.5: RR on Histogram needs
    /// N ≥ ((n−1)/(αn))·[n/(e^ε−1)² + 2/(e^ε−1)] samples.
    #[test]
    fn example_5_5_randomized_response_sample_complexity() {
        use crate::variance::{optimal_reconstruction, variance_profile};
        use crate::StrategyMatrix;
        use ldp_linalg::Matrix;
        let (n, eps, alpha) = (8usize, 1.0_f64, 0.01);
        let e = eps.exp();
        let z = e + n as f64 - 1.0;
        let s = StrategyMatrix::new(Matrix::from_fn(
            n,
            n,
            |o, u| {
                if o == u {
                    e / z
                } else {
                    1.0 / z
                }
            },
        ))
        .unwrap();
        let k = optimal_reconstruction(&s);
        let profile = variance_profile(&s, &k, &Matrix::identity(n));
        let measured = sample_complexity(&profile, n, alpha);
        let nf = n as f64;
        let expected = (nf - 1.0) / (alpha * nf) * (nf / (e - 1.0).powi(2) + 2.0 / (e - 1.0));
        assert!(
            (measured - expected).abs() / expected < 1e-8,
            "{measured} vs {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_alpha() {
        let _ = sample_complexity(&[1.0], 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn rejects_empty_workload() {
        let _ = sample_complexity(&[1.0], 0, 0.01);
    }
}
