//! Lower bounds on achievable error (Section 5.3 of the paper).
//!
//! Theorem 5.6: for any ε-LDP strategy matrix `Q` and workload `W` with
//! singular values `λ_1, …, λ_n`,
//!
//! ```text
//! (λ_1 + ⋯ + λ_n)² / e^ε  ≤  L(Q) = tr[(QᵀD⁻¹Q)†(WᵀW)]
//! ```
//!
//! Corollary 5.7 translates this to worst-case variance. The singular
//! values of `W` are recovered from the Gram matrix as `λ_i = √eig_i(G)`,
//! so the bounds are computable even when `W` is never materialized.

use ldp_linalg::{dense_of, eigh_auto, LinOp};

/// Singular values of the workload `W`, recovered from `G = WᵀW` as the
/// square roots of its eigenvalues (clamped at zero), descending.
///
/// # Panics
/// Panics if `gram` is not square.
pub fn singular_values_from_gram(gram: &dyn LinOp) -> Vec<f64> {
    // The eigendecomposition is dense; materialize structured operators
    // here (a cold path — bounds are computed once per workload).
    let e = eigh_auto(dense_of(gram).as_ref());
    let mut sv: Vec<f64> = e.eigenvalues.iter().map(|&l| l.max(0.0).sqrt()).collect();
    sv.reverse(); // eigh sorts ascending
    sv
}

/// The SVD lower bound of Theorem 5.6 on the optimization objective
/// `L(Q)`: `(Σ_i λ_i)² / e^ε`.
///
/// # Panics
/// Panics if `epsilon` is not positive and finite.
pub fn svd_bound_objective(gram: &dyn LinOp, epsilon: f64) -> f64 {
    assert!(epsilon > 0.0 && epsilon.is_finite(), "invalid epsilon");
    let nuclear: f64 = singular_values_from_gram(gram).iter().sum();
    nuclear * nuclear / epsilon.exp()
}

/// Corollary 5.7: lower bound on the worst-case total variance of *any*
/// factorization mechanism:
/// `(N/n)·[(Σλ)²/e^ε − ‖W‖²_F]` with `‖W‖²_F = tr(G)`.
///
/// The value can be negative for very easy workloads / large ε, in which
/// case the bound is vacuous (variance is trivially ≥ 0); callers typically
/// clamp at zero.
pub fn worst_case_variance_bound(gram: &dyn LinOp, epsilon: f64, n_users: f64) -> f64 {
    let n = gram.rows() as f64;
    n_users / n * (svd_bound_objective(gram, epsilon) - gram.trace())
}

/// Lower bound on the sample complexity at target normalized variance
/// `alpha` for a `num_queries`-query workload, obtained by combining
/// Corollary 5.7 with Corollary 5.4. Clamped at zero.
pub fn sample_complexity_bound(
    gram: &dyn LinOp,
    epsilon: f64,
    num_queries: usize,
    alpha: f64,
) -> f64 {
    assert!(alpha > 0.0, "target accuracy must be positive");
    assert!(num_queries > 0, "workload must contain at least one query");
    let n = gram.rows() as f64;
    let per_user = (svd_bound_objective(gram, epsilon) - gram.trace()) / n;
    (per_user / (num_queries as f64 * alpha)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_linalg::Matrix;

    /// Example 5.8: on the Histogram workload the sample complexity of any
    /// factorization mechanism is at least `(1/α)(1/e^ε − 1/n)`.
    #[test]
    fn example_5_8_histogram_lower_bound() {
        let (n, eps, alpha) = (512usize, 1.0, 0.01);
        let gram = Matrix::identity(n);
        let bound = sample_complexity_bound(&gram, eps, n, alpha);
        let expected = (1.0 / eps.exp() - 1.0 / n as f64) / alpha;
        assert!(
            (bound - expected).abs() / expected < 1e-9,
            "{bound} vs {expected}"
        );
    }

    #[test]
    fn singular_values_of_identity() {
        let sv = singular_values_from_gram(&Matrix::identity(4));
        for s in sv {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_values_match_direct_svd() {
        let w = Matrix::from_fn(6, 4, |i, j| ((i * 3 + j * 7) % 5) as f64 - 2.0);
        let via_gram = singular_values_from_gram(&w.gram());
        let direct = ldp_linalg::svd(&w).singular_values;
        for (a, b) in via_gram.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    /// Theorem 5.6 must hold for randomized response: the bound is below
    /// the actual objective value.
    #[test]
    fn bound_holds_for_randomized_response() {
        use crate::variance::strategy_objective;
        use crate::StrategyMatrix;
        for (n, eps) in [(4usize, 0.5), (8, 1.0), (16, 2.0)] {
            let e: f64 = eps;
            let ee = e.exp();
            let z = ee + n as f64 - 1.0;
            let s =
                StrategyMatrix::new(Matrix::from_fn(
                    n,
                    n,
                    |o, u| {
                        if o == u {
                            ee / z
                        } else {
                            1.0 / z
                        }
                    },
                ))
                .unwrap();
            let gram = Matrix::identity(n);
            let objective = strategy_objective(&s, &gram);
            let bound = svd_bound_objective(&gram, e);
            assert!(
                bound <= objective * (1.0 + 1e-9),
                "bound {bound} exceeds objective {objective} (n={n}, eps={e})"
            );
        }
    }

    #[test]
    fn bound_decreases_with_epsilon() {
        let gram = Matrix::identity(16);
        let b1 = svd_bound_objective(&gram, 0.5);
        let b2 = svd_bound_objective(&gram, 2.0);
        assert!(b1 > b2);
    }

    #[test]
    fn harder_workloads_have_larger_bounds() {
        // Prefix is strictly harder than Histogram per the paper's Sec 6.2.
        let n = 32;
        let prefix = Matrix::from_fn(n, n, |i, j| if j <= i { 1.0 } else { 0.0 });
        let hist_bound = svd_bound_objective(&Matrix::identity(n), 1.0);
        let prefix_bound = svd_bound_objective(&prefix.gram(), 1.0);
        assert!(prefix_bound > hist_bound);
    }

    #[test]
    fn vacuous_bound_clamped() {
        // Tiny workload, huge epsilon: bound below zero -> clamped.
        let gram = Matrix::identity(2);
        let b = sample_complexity_bound(&gram, 8.0, 2, 0.01);
        assert!(b >= 0.0);
    }
}
