//! Privacy auditing: independent verification of ε-LDP certificates.
//!
//! Mechanisms in this workspace are private *by construction* (their
//! strategy matrices satisfy Proposition 2.6). This module provides the
//! belt-and-braces checks a production deployment wants anyway:
//!
//! * [`analytic_audit`] — recomputes the exact privacy loss of a strategy
//!   matrix and reports the worst-case (output, user-pair) witness, not
//!   just the ε value, so a violation is actionable.
//! * [`empirical_audit`] — a black-box Monte Carlo audit: runs the
//!   *sampling path* of a mechanism many times for the witness user pair
//!   and estimates the observed log-likelihood ratio per output. This
//!   catches implementation bugs where the sampler disagrees with the
//!   matrix (e.g. a mis-indexed alias table) that no amount of matrix
//!   checking can see.

use rand::RngCore;

use crate::sampling::AliasTable;
use crate::StrategyMatrix;

/// The result of an analytic privacy audit.
#[derive(Clone, Debug)]
pub struct AnalyticAudit {
    /// The exact smallest ε the strategy satisfies.
    pub epsilon: f64,
    /// Output index achieving the worst ratio.
    pub worst_output: usize,
    /// User pair `(u, u')` achieving the worst ratio at that output.
    pub worst_pair: (usize, usize),
}

/// Recomputes the privacy loss of a strategy matrix and identifies the
/// worst-case witness.
///
/// Ignores all-zero rows (outputs that never occur). Returns
/// `epsilon = f64::INFINITY` with the offending witness if some output
/// has zero probability for one user type but not another.
pub fn analytic_audit(strategy: &StrategyMatrix) -> AnalyticAudit {
    let q = strategy.matrix();
    let mut worst = AnalyticAudit {
        epsilon: 0.0,
        worst_output: 0,
        worst_pair: (0, 0),
    };
    for o in 0..q.rows() {
        let row = q.row(o);
        let (mut max_u, mut min_u) = (0usize, 0usize);
        for (u, &v) in row.iter().enumerate() {
            if v > row[max_u] {
                max_u = u;
            }
            if v < row[min_u] {
                min_u = u;
            }
        }
        if row[max_u] == 0.0 {
            continue; // dead output
        }
        let ratio = if row[min_u] == 0.0 {
            f64::INFINITY
        } else {
            (row[max_u] / row[min_u]).ln()
        };
        if ratio > worst.epsilon {
            worst = AnalyticAudit {
                epsilon: ratio,
                worst_output: o,
                worst_pair: (max_u, min_u),
            };
            if ratio.is_infinite() {
                break;
            }
        }
    }
    worst
}

/// The result of an empirical (sampling-based) privacy audit.
#[derive(Clone, Debug)]
pub struct EmpiricalAudit {
    /// Largest observed per-output log-likelihood ratio between the two
    /// audited user types (a Monte Carlo estimate of their privacy loss).
    pub observed_epsilon: f64,
    /// Number of samples drawn per user type.
    pub samples: u64,
    /// Whether the observed loss is consistent with the claimed budget
    /// within the audit's statistical tolerance.
    pub consistent: bool,
}

/// Samples the mechanism's response distribution for the analytic worst
/// pair and compares observed frequencies against the claimed ε.
///
/// The tolerance accounts for Monte Carlo error: an output expected
/// `k` times has relative error ≈ `1/√k`, so outputs observed fewer than
/// 100 times are excluded from the ratio estimate and the consistency
/// check allows a `3/√min_count` multiplicative slack.
///
/// # Panics
/// Panics if `samples == 0`.
pub fn empirical_audit(
    strategy: &StrategyMatrix,
    claimed_epsilon: f64,
    samples: u64,
    rng: &mut dyn RngCore,
) -> EmpiricalAudit {
    assert!(samples > 0, "audit needs at least one sample");
    let witness = analytic_audit(strategy);
    let (u, v) = witness.worst_pair;
    let m = strategy.num_outputs();

    let table_u = AliasTable::new(&strategy.output_distribution(u));
    let table_v = AliasTable::new(&strategy.output_distribution(v));
    let hist_u = table_u.sample_histogram(samples, rng);
    let hist_v = table_v.sample_histogram(samples, rng);

    let mut observed: f64 = 0.0;
    let mut min_support = f64::INFINITY;
    for o in 0..m {
        let (a, b) = (hist_u[o], hist_v[o]);
        if a < 100.0 || b < 100.0 {
            continue; // too rare to estimate a ratio
        }
        let ratio = (a / b).ln().abs();
        if ratio > observed {
            observed = ratio;
            min_support = a.min(b);
        }
    }
    let slack = if min_support.is_finite() {
        3.0 / min_support.sqrt()
    } else {
        0.0
    };
    EmpiricalAudit {
        observed_epsilon: observed,
        samples,
        consistent: observed <= claimed_epsilon + slack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rr(n: usize, eps: f64) -> StrategyMatrix {
        let e = eps.exp();
        let z = e + n as f64 - 1.0;
        StrategyMatrix::new(Matrix::from_fn(
            n,
            n,
            |o, u| {
                if o == u {
                    e / z
                } else {
                    1.0 / z
                }
            },
        ))
        .unwrap()
    }

    #[test]
    fn analytic_audit_matches_epsilon() {
        let s = rr(5, 1.3);
        let audit = analytic_audit(&s);
        assert!((audit.epsilon - 1.3).abs() < 1e-12);
        // Witness: some diagonal vs off-diagonal pair on that output row.
        assert_eq!(audit.worst_pair.0, audit.worst_output);
    }

    #[test]
    fn analytic_audit_detects_violation() {
        // An output with a zero for one user only: infinite loss.
        let q = Matrix::from_rows(&[&[0.5, 0.4], &[0.5, 0.4], &[0.0, 0.2]]);
        let s = StrategyMatrix::new(q).unwrap();
        let audit = analytic_audit(&s);
        assert!(audit.epsilon.is_infinite());
        assert_eq!(audit.worst_output, 2);
    }

    #[test]
    fn empirical_audit_consistent_for_valid_mechanism() {
        let eps = 1.0;
        let s = rr(4, eps);
        let mut rng = StdRng::seed_from_u64(5);
        let audit = empirical_audit(&s, eps, 200_000, &mut rng);
        assert!(audit.consistent, "observed {}", audit.observed_epsilon);
        // Observed loss should be near the true budget (RR's worst pair
        // ratio is exactly e^eps).
        assert!((audit.observed_epsilon - eps).abs() < 0.2);
    }

    #[test]
    fn empirical_audit_flags_overclaimed_budget() {
        // Mechanism actually satisfies eps=2; claim eps=0.5 -> must flag.
        let s = rr(4, 2.0);
        let mut rng = StdRng::seed_from_u64(6);
        let audit = empirical_audit(&s, 0.5, 200_000, &mut rng);
        assert!(!audit.consistent, "observed {}", audit.observed_epsilon);
    }

    #[test]
    fn audit_ignores_dead_outputs() {
        let q = Matrix::from_rows(&[&[0.7, 0.3], &[0.3, 0.7], &[0.0, 0.0]]);
        let s = StrategyMatrix::new(q).unwrap();
        let audit = analytic_audit(&s);
        assert!(audit.epsilon.is_finite());
    }
}
