//! Error type shared across the workspace's LDP crates.

use std::fmt;

/// Errors raised when constructing or validating LDP mechanisms.
#[derive(Clone, Debug, PartialEq)]
pub enum LdpError {
    /// A strategy matrix column does not sum to 1 (within tolerance).
    ColumnNotStochastic {
        /// Offending column (user type index).
        column: usize,
        /// The actual column sum.
        sum: f64,
    },
    /// A strategy matrix entry is negative or non-finite.
    InvalidProbability {
        /// Row (output) index.
        row: usize,
        /// Column (user type) index.
        column: usize,
        /// The offending value.
        value: f64,
    },
    /// The strategy matrix violates the ε-LDP row-ratio constraint.
    PrivacyViolation {
        /// The privacy budget that was requested.
        requested_epsilon: f64,
        /// The smallest ε the matrix actually satisfies (may be infinite).
        actual_epsilon: f64,
    },
    /// The privacy budget must be a positive finite number.
    InvalidEpsilon(f64),
    /// The workload is not contained in the row space of the strategy, so
    /// no reconstruction matrix with `W = VQ` exists (Theorem 3.10's
    /// `W = WQ†Q` condition fails).
    WorkloadNotSupported {
        /// Max-norm of the row-space residual `(I−KQ)ᵀG(I−KQ)`.
        residual: f64,
    },
    /// A dimension mismatch between interacting objects.
    DimensionMismatch {
        /// Human-readable description of what mismatched.
        context: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Received dimension.
        actual: usize,
    },
    /// Numerical optimization failed to produce a usable result.
    OptimizationFailed(String),
    /// An ad-hoc query could not be resolved or answered against the
    /// deployment (unknown attribute, out-of-range value, non-scalar
    /// shape, or a deployment without a schema). Serving paths fail
    /// closed with this instead of panicking on user input.
    InvalidQuery(String),
    /// No closed-form baseline mechanism goes by this name (raised when
    /// parsing baseline selections from CLI flags or environment
    /// variables).
    UnknownBaseline(String),
}

impl fmt::Display for LdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdpError::ColumnNotStochastic { column, sum } => {
                write!(f, "strategy column {column} sums to {sum}, expected 1")
            }
            LdpError::InvalidProbability { row, column, value } => {
                write!(
                    f,
                    "strategy entry ({row}, {column}) = {value} is not a probability"
                )
            }
            LdpError::PrivacyViolation {
                requested_epsilon,
                actual_epsilon,
            } => write!(
                f,
                "strategy satisfies only {actual_epsilon}-LDP, \
                 which exceeds the requested budget {requested_epsilon}"
            ),
            LdpError::InvalidEpsilon(eps) => {
                write!(f, "privacy budget must be positive and finite, got {eps}")
            }
            LdpError::WorkloadNotSupported { residual } => write!(
                f,
                "workload is not in the row space of the strategy \
                 (residual {residual:.3e}); no unbiased reconstruction exists"
            ),
            LdpError::DimensionMismatch {
                context,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "dimension mismatch in {context}: expected {expected}, got {actual}"
                )
            }
            LdpError::OptimizationFailed(msg) => write!(f, "optimization failed: {msg}"),
            LdpError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            LdpError::UnknownBaseline(name) => {
                write!(f, "unknown baseline mechanism '{name}'")
            }
        }
    }
}

impl std::error::Error for LdpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_fields() {
        let e = LdpError::ColumnNotStochastic {
            column: 3,
            sum: 0.5,
        };
        assert!(e.to_string().contains("column 3"));
        let e = LdpError::PrivacyViolation {
            requested_epsilon: 1.0,
            actual_epsilon: 2.0,
        };
        assert!(e.to_string().contains('2'));
        let e = LdpError::DimensionMismatch {
            context: "gram",
            expected: 4,
            actual: 5,
        };
        assert!(e.to_string().contains("gram"));
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(LdpError::InvalidEpsilon(-1.0));
        assert!(e.to_string().contains("-1"));
    }
}
