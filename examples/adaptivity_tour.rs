//! A tour of workload adaptivity: one optimizer, many workloads.
//!
//! The paper's central claim (Section 6.2) is that a *single* optimized
//! mechanism adapts to whatever workload the analyst declares — matching
//! or beating the specialist mechanism for each workload. This example
//! walks the paper's six workloads plus two custom ones, reporting for
//! each: the optimized sample complexity, the best baseline, and the SVD
//! lower bound (Theorem 5.6) that certifies how close to optimal we are.
//!
//! ```text
//! cargo run --release --example adaptivity_tour
//! ```

use ldp::core::bounds;
use ldp::prelude::*;

fn main() {
    let n = 32;
    let d = 5; // n = 2^5
    let epsilon = 1.0;
    let alpha = 0.01;

    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Histogram::new(n)),
        Box::new(Prefix::new(n)),
        Box::new(AllRange::new(n)),
        Box::new(AllMarginals::new(d)),
        Box::new(KWayMarginals::new(d, 3)),
        Box::new(Parity::up_to(d, 3)),
        // Custom: the analyst's own mix — CDF plus a histogram tail.
        Box::new(
            Stacked::weighted(vec![
                (1.0, Box::new(Prefix::new(n))),
                (2.0, Box::new(WidthRange::new(n, 4))),
            ])
            .with_name("Custom CDF+windows"),
        ),
        Box::new(Total::new(n)),
    ];

    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>8}",
        "workload", "optimized", "best base", "LB (5.6)", "vs base"
    );
    for workload in &workloads {
        let gram = workload.gram();
        let p = workload.num_queries();

        let optimized = optimized_mechanism(
            &gram,
            epsilon,
            &OptimizerConfig::new(3).with_iterations(120),
        )
        .expect("optimization succeeds");
        let sc_opt = optimized.sample_complexity(&gram, p, alpha);

        // Baselines that support any workload.
        let baselines: Vec<Box<dyn LdpMechanism>> = vec![
            Box::new(randomized_response(n, epsilon, &gram).unwrap()),
            Box::new(hadamard_response(n, epsilon, &gram).unwrap()),
            Box::new(hierarchical(n, epsilon, &gram).unwrap()),
        ];
        let sc_base = baselines
            .iter()
            .map(|m| m.sample_complexity(&gram, p, alpha))
            .fold(f64::INFINITY, f64::min);

        let lb = bounds::sample_complexity_bound(&gram, epsilon, p, alpha);

        println!(
            "{:<20} {:>12.0} {:>12.0} {:>12.0} {:>7.2}x",
            workload.name(),
            sc_opt,
            sc_base,
            lb,
            sc_base / sc_opt
        );
    }
    println!(
        "\n'vs base' > 1 means the one optimized mechanism beats the best of\n\
         RR/Hadamard/Hierarchical on that workload; 'LB' is the Theorem 5.6\n\
         floor no factorization mechanism can beat."
    );
}
