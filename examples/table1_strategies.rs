//! Table 1 of the paper: four existing LDP mechanisms written as strategy
//! matrices. Prints each matrix (for a small domain), verifies its ε-LDP
//! budget, and reports its variance on the Histogram workload — the
//! unification that motivates the factorization-mechanism view.
//!
//! ```text
//! cargo run --release --example table1_strategies
//! ```

use ldp::core::variance;
use ldp::mechanisms::{
    hadamard::hadamard_strategy, randomized_response::randomized_response_strategy,
    rappor::rappor_strategy, subset_selection::subset_selection_strategy,
};
use ldp::prelude::*;

fn show(name: &str, strategy: &StrategyMatrix, epsilon: f64) {
    let (m, n) = (strategy.num_outputs(), strategy.domain_size());
    println!("== {name} ==");
    println!("shape: {m} outputs x {n} user types");
    println!(
        "satisfies epsilon = {:.6} (requested {epsilon})",
        strategy.epsilon()
    );
    if m <= 16 {
        for o in 0..m {
            let row: Vec<String> = (0..n)
                .map(|u| format!("{:6.3}", strategy.matrix()[(o, u)]))
                .collect();
            println!("  [{}]", row.join(" "));
        }
    } else {
        println!("  ({m} rows — omitted)");
    }
    // Variance on the Histogram workload via the optimal reconstruction.
    let gram = Matrix::identity(n);
    let k = variance::optimal_reconstruction(strategy);
    let profile = variance::variance_profile(strategy, &k, &gram);
    let worst = variance::worst_case_variance(&profile, 1.0);
    println!("worst-case per-user variance on Histogram: {worst:.3}\n");
}

fn main() {
    let n = 5;
    let epsilon = 1.0;
    println!("Table 1 mechanisms over a {n}-type domain at epsilon = {epsilon}\n");

    show(
        "Randomized Response [44]",
        &randomized_response_strategy(n, epsilon),
        epsilon,
    );
    show("RAPPOR [18]", &rappor_strategy(n, epsilon), epsilon);
    show("Hadamard [1]", &hadamard_strategy(n, epsilon), epsilon);
    show(
        "Subset Selection [45] (d = 2)",
        &subset_selection_strategy(n, 2, epsilon),
        epsilon,
    );

    // Example 3.7's closed form, as a cross-check on the RR row.
    let e = epsilon.exp();
    let nf = n as f64;
    let closed_form = (nf - 1.0) * (nf / (e - 1.0).powi(2) + 2.0 / (e - 1.0));
    println!("Example 3.7 closed form for RR: {closed_form:.3} (matches the first row above)");
}
