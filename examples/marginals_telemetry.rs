//! Telemetry over binary feature flags: estimate all 3-way feature
//! marginals under LDP — the workload of the paper's "3-Way Marginals"
//! panel, and the kind of query Microsoft/Google-style telemetry pipelines
//! run over deployed-client feature bits.
//!
//! Compares the workload-optimized mechanism against the Fourier
//! mechanism (designed for marginals) and randomized response.
//!
//! ```text
//! cargo run --release --example marginals_telemetry
//! ```

use ldp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let d = 6; // six binary feature flags -> domain size 64
    let k = 3;
    let epsilon = 2.0; // telemetry-style budget
    let workload = KWayMarginals::new(d, k);
    let n = workload.domain_size();
    let gram = workload.gram();
    let p = workload.num_queries();

    println!("domain: {{0,1}}^{d} ({n} client configurations)");
    println!("workload: all {k}-way marginals = {p} queries, epsilon = {epsilon}\n");

    // Three mechanisms: ours, the specialist, and the generalist.
    let optimized = optimized_mechanism(
        &gram,
        epsilon,
        &OptimizerConfig::new(11).with_iterations(150),
    )
    .expect("optimization succeeds");
    let fourier = Fourier::up_to(d, k, epsilon)
        .mechanism(&gram)
        .expect("low-order support covers k-way marginals");
    let rr = randomized_response(n, epsilon, &gram).expect("RR supports any workload");

    let alpha = 0.01;
    println!("users needed for {alpha} normalized variance (Cor. 5.4):");
    let mechanisms: Vec<&dyn LdpMechanism> = vec![&optimized, &fourier, &rr];
    let mut best_baseline = f64::INFINITY;
    for mech in &mechanisms {
        let sc = mech.sample_complexity(&gram, p, alpha);
        println!("  {:<22} {sc:>12.0}", mech.name());
        if mech.name() != "Optimized" {
            best_baseline = best_baseline.min(sc);
        }
    }
    let sc_opt = optimized.sample_complexity(&gram, p, alpha);
    println!(
        "  improvement over best baseline: {:.2}x\n",
        best_baseline / sc_opt
    );

    // Simulate a fleet: correlated feature bits (bit 0 drives bits 1-2).
    let mut weights = vec![0.0; n];
    for (u, w) in weights.iter_mut().enumerate() {
        let b0 = u & 1;
        let agree = ((u >> 1) & 1 == b0) as usize + ((u >> 2) & 1 == b0) as usize;
        *w = 1.0 + 3.0 * agree as f64 + if b0 == 1 { 2.0 } else { 0.0 };
    }
    let shape = ldp::data::Shape::from_weights(weights);
    let fleet = shape.sample(100_000, &mut StdRng::seed_from_u64(8));

    let mut rng = StdRng::seed_from_u64(9);
    let xhat = optimized.run(&fleet, &mut rng);
    let truth = workload.evaluate(fleet.counts());
    let est = workload.evaluate(&xhat);

    // Report the largest marginal-cell error.
    let max_err = truth
        .iter()
        .zip(&est)
        .map(|(t, e)| (t - e).abs())
        .fold(0.0_f64, f64::max);
    let mean_err = truth
        .iter()
        .zip(&est)
        .map(|(t, e)| (t - e).abs())
        .sum::<f64>()
        / p as f64;
    println!("fleet of {} clients measured privately:", fleet.total());
    println!("  mean marginal-cell error: {mean_err:.1} clients");
    println!("  max  marginal-cell error: {max_err:.1} clients");
    println!(
        "  (out of marginal cells holding up to {} clients)",
        fleet.total()
    );
}
