//! A privacy-preserving cost survey: estimate the distribution function of
//! a sensitive numeric attribute (e.g. medical spending) without any user
//! revealing their bracket.
//!
//! This is the paper's motivating use case for the Prefix workload: the
//! analyst needs the CDF (to read off quantiles), the data is skewed
//! (MEDCOST-like), and the population is small enough that mechanism
//! quality matters.
//!
//! ```text
//! cargo run --release --example cdf_survey
//! ```

use ldp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 64; // spending brackets
    let epsilon = 1.0;
    let n_users = 9_415; // MEDCOST-sized population

    let workload = Prefix::new(n);
    let gram = workload.gram();

    // A skewed population, as real cost data is.
    let shape = ldp::data::medcost_shape(n);
    let data = shape.sample(n_users, &mut StdRng::seed_from_u64(3));

    println!(
        "survey: {} users, {} spending brackets, epsilon = {epsilon}\n",
        n_users, n
    );

    // Optimize the mechanism for the CDF workload.
    let mech = optimized_mechanism(
        &gram,
        epsilon,
        &OptimizerConfig::new(7).with_iterations(150),
    )
    .expect("optimization succeeds");

    // Run the protocol and make the estimate consistent with WNNLS —
    // essential at this population size (Section 6.7 of the paper).
    let mut rng = StdRng::seed_from_u64(4);
    let xhat_raw = mech.run(&data, &mut rng);
    let xhat = wnnls(&gram, &xhat_raw, &WnnlsOptions::default());

    let cdf_true = workload.evaluate(data.counts());
    let cdf_est = workload.evaluate(&xhat);

    // Read off quantiles from both CDFs.
    println!(
        "{:>10} {:>14} {:>14} {:>8}",
        "quantile", "true bracket", "est. bracket", "delta"
    );
    for q in [0.25, 0.5, 0.75, 0.9, 0.99] {
        let target = q * n_users as f64;
        let true_bracket = cdf_true.iter().position(|&c| c >= target).unwrap_or(n - 1);
        let est_bracket = cdf_est.iter().position(|&c| c >= target).unwrap_or(n - 1);
        println!(
            "{:>9}% {:>14} {:>14} {:>8}",
            (q * 100.0) as u32,
            true_bracket,
            est_bracket,
            (est_bracket as i64 - true_bracket as i64).abs()
        );
    }

    // How trustworthy is this? The analytic error is known in advance.
    let total_var = mech.data_variance(&gram, &data);
    let per_query_sd = (total_var / workload.num_queries() as f64).sqrt();
    println!("\nanalytic per-query standard deviation: {per_query_sd:.1} users");
    println!("(the mechanism promises this before anyone submits a response — Thm 3.4)");

    // And the max CDF error actually achieved:
    let max_err = cdf_true
        .iter()
        .zip(&cdf_est)
        .map(|(t, e)| (t - e).abs())
        .fold(0.0_f64, f64::max);
    println!(
        "max CDF error this run: {max_err:.1} users ({:.2}% of N)",
        100.0 * max_err / n_users as f64
    );
}
