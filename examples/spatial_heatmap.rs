//! Private spatial analytics: 2-D range queries over a grid of locations,
//! built as the Kronecker product of two 1-D All Range workloads, and
//! collected through the streaming client/aggregator protocol.
//!
//! ```text
//! cargo run --release --example spatial_heatmap
//! ```

use ldp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // An 8x8 grid of city zones; analysts ask for counts over arbitrary
    // axis-aligned rectangles (all 1296 of them).
    let side = 8;
    let epsilon = 2.0;
    let workload = Product::new(Box::new(AllRange::new(side)), Box::new(AllRange::new(side)))
        .with_name("2-D All Range");
    let n = workload.domain_size();
    let p = workload.num_queries();
    let gram = workload.gram();
    println!(
        "workload: {} — {p} rectangle queries over {n} zones, epsilon = {epsilon}\n",
        workload.name()
    );

    // Optimize a strategy for the rectangle workload.
    let mech = optimized_mechanism(
        &gram,
        epsilon,
        &OptimizerConfig::new(31).with_iterations(120),
    )
    .expect("optimization succeeds");

    // A population concentrated around two hot spots.
    let mut weights = vec![0.0; n];
    for r in 0..side {
        for c in 0..side {
            let d1 = ((r as f64 - 2.0).powi(2) + (c as f64 - 2.0).powi(2)) / 3.0;
            let d2 = ((r as f64 - 6.0).powi(2) + (c as f64 - 5.0).powi(2)) / 5.0;
            weights[r * side + c] = (-d1).exp() + 0.7 * (-d2).exp() + 0.01;
        }
    }
    let population = ldp::data::Shape::from_weights(weights);
    let data = population.sample(80_000, &mut StdRng::seed_from_u64(44));

    // Stream reports through the deployment-style protocol.
    let client = Client::new(mech.strategy().clone());
    let mut aggregator = Aggregator::new(&mech);
    let mut rng = StdRng::seed_from_u64(45);
    for (zone, count) in data.nonzero() {
        for _ in 0..count as u64 {
            aggregator
                .ingest(client.respond(zone, &mut rng))
                .expect("valid report");
        }
    }
    println!("collected {} private reports", aggregator.reports());

    // Consistent non-negative zone estimates.
    let xhat = wnnls(&gram, &aggregator.estimate(), &WnnlsOptions::default());

    // Render true vs estimated heatmaps.
    let render = |x: &[f64]| {
        let shades = [' ', '.', ':', '+', '*', '#', '@'];
        let max = x.iter().cloned().fold(f64::MIN, f64::max).max(1.0);
        (0..side)
            .map(|r| {
                (0..side)
                    .map(|c| {
                        let v = x[r * side + c] / max;
                        shades[((v * (shades.len() - 1) as f64).round() as usize)
                            .min(shades.len() - 1)]
                    })
                    .collect::<String>()
            })
            .collect::<Vec<_>>()
    };
    println!("\ntrue density        private estimate");
    for (a, b) in render(data.counts()).iter().zip(render(&xhat)) {
        println!("{a}        {b}");
    }

    // Quantify rectangle-query accuracy.
    let truth = workload.evaluate(data.counts());
    let est = workload.evaluate(&xhat);
    let mean_abs = truth
        .iter()
        .zip(&est)
        .map(|(t, e)| (t - e).abs())
        .sum::<f64>()
        / p as f64;
    println!(
        "\nmean rectangle-count error: {mean_abs:.0} of {} residents ({:.3}%)",
        data.total(),
        100.0 * mean_abs / data.total()
    );
}
