//! A frequency oracle with a privacy audit: the Histogram workload (the
//! paper's running example), deployed end to end with both the analytic
//! ε certificate and an independent empirical audit of the sampler.
//!
//! ```text
//! cargo run --release --example frequency_oracle
//! ```

use ldp::core::audit::{analytic_audit, empirical_audit};
use ldp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 24; // e.g. 24 app error codes
    let epsilon = 1.5;
    let workload = Histogram::new(n);
    let gram = workload.gram();

    // Optimize for the Histogram workload.
    let mech = optimized_mechanism(
        &gram,
        epsilon,
        &OptimizerConfig::new(21).with_iterations(150),
    )
    .expect("optimization succeeds");
    println!("optimized frequency oracle: n = {n}, epsilon = {epsilon}");
    println!(
        "strategy shape: {} outputs x {n} inputs\n",
        mech.strategy().num_outputs()
    );

    // Privacy certificates — analytic and empirical.
    let analytic = analytic_audit(mech.strategy());
    println!("analytic audit:  worst-case loss = {:.6}", analytic.epsilon);
    println!(
        "                 witness: output {} distinguishing types {} vs {}",
        analytic.worst_output, analytic.worst_pair.0, analytic.worst_pair.1
    );
    let mut rng = StdRng::seed_from_u64(100);
    let empirical = empirical_audit(mech.strategy(), epsilon, 400_000, &mut rng);
    println!(
        "empirical audit: observed loss = {:.4} over {} samples -> {}",
        empirical.observed_epsilon,
        empirical.samples,
        if empirical.consistent {
            "CONSISTENT"
        } else {
            "VIOLATION"
        }
    );
    assert!(
        empirical.consistent,
        "audit must pass for a valid mechanism"
    );

    // Deploy on a skewed population of error reports.
    let data = ldp::data::zipf_shape(n, 1.5).sample(200_000, &mut StdRng::seed_from_u64(5));
    let mut rng = StdRng::seed_from_u64(6);
    let xhat = wnnls(&gram, &mech.run(&data, &mut rng), &WnnlsOptions::default());

    println!("\n{:>6} {:>10} {:>10}", "code", "true", "estimate");
    for (u, (truth, est)) in data.counts().iter().zip(&xhat).enumerate().take(6) {
        println!("{u:>6} {truth:>10.0} {est:>10.1}");
    }
    println!("   ...");
    let linf = data
        .counts()
        .iter()
        .zip(&xhat)
        .map(|(t, e)| (t - e).abs())
        .fold(0.0_f64, f64::max);
    println!(
        "\nmax frequency error: {linf:.0} of {} reports ({:.3}%)",
        data.total(),
        100.0 * linf / data.total()
    );

    // Compare to what randomized response would have cost.
    let rr = randomized_response(n, epsilon, &gram).unwrap();
    let ratio = rr.sample_complexity(&gram, n, 0.01) / mech.sample_complexity(&gram, n, 0.01);
    println!("sample-complexity advantage over randomized response: {ratio:.2}x");
}
