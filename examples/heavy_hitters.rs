//! Top-k heavy hitters over an open domain: URLs nobody enumerated up
//! front, reported under ε-LDP through the sparse Hadamard oracle,
//! aggregated in hash-map shards, checkpointed, and mined for the
//! most frequent keys with analytic error bars.
//!
//! ```text
//! cargo run --release --example heavy_hitters
//! ```
//!
//! Every line this prints is deterministic — integer counts, exact
//! sorted merges, and fixed-seed randomization — so CI runs it at
//! `LDP_THREADS ∈ {1, 4}` and every kernel backend and requires the
//! stdout to be byte-identical (the open-domain extension of the
//! repo's determinism contract).

use ldp::prelude::*;
use ldp::sparse::{decode_sparse_checkpoint, encode_sparse_checkpoint, SparseCheckpoint};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // An open attribute: the domain is "every URL", not an enumerated
    // [n]. ε = 2 through a 2^14-bucket sparse Hadamard oracle.
    let deployment = SparseDeployment::hadamard("url", 2.0, 14).expect("valid oracle params");
    let client = deployment.client();
    println!(
        "open-domain deployment: attribute 'url', epsilon = {}, oracle = {}",
        deployment.oracle().epsilon(),
        deployment.oracle().name()
    );

    // A skewed population: a few hot pages, a long cold tail. Each user
    // randomizes locally — one u64 report, no raw URL leaves the
    // client.
    let pages: Vec<(String, u64)> = (1..=400)
        .map(|rank| (format!("https://example.com/page/{rank}"), 24_000 / rank))
        .collect();

    // Four aggregation shards (threads, machines — the merge cannot
    // tell), then one canonical merge.
    let mut shards: Vec<SparseShard> = (0..4).map(|_| SparseShard::new()).collect();
    let mut rng = StdRng::seed_from_u64(42);
    let mut sent = 0u64;
    for (url, count) in &pages {
        let kh = key_hash(url);
        for i in 0..*count {
            shards[(i % 4) as usize].absorb(client.respond_hashed(kh, &mut rng));
            sent += 1;
        }
    }
    let mut ingestor = deployment.ingestor();
    for shard in &mut shards {
        ingestor.absorb_shard(shard);
    }
    println!(
        "ingested {} reports through 4 shards ({} distinct report values)\n",
        ingestor.reports(),
        ingestor.pairs().len()
    );
    assert_eq!(ingestor.reports(), sent);

    // Durability: the merged state round-trips through the LDPS codec.
    let (epoch, batches, binding, pairs) = ingestor.checkpoint();
    let record = encode_sparse_checkpoint(&SparseCheckpoint {
        epoch,
        batches,
        binding,
        reports: sent,
        pairs,
    });
    let restored = decode_sparse_checkpoint(&record, deployment.binding()).expect("valid record");
    println!(
        "checkpoint: {} bytes, epoch {}, binding {:#018x}; decode round-trips\n",
        record.len(),
        restored.epoch,
        restored.binding
    );

    // Top-10 heavy hitters among the tracked candidates, admitting only
    // estimates that clear 4 standard deviations of pure noise.
    let candidates: Vec<u64> = pages.iter().map(|(url, _)| key_hash(url)).collect();
    let hitters = deployment.heavy_hitters(&restored.pairs, &candidates, 10, 4.0);
    let sigma = deployment.oracle().stddev(restored.reports);
    println!("top-10 heavy hitters (admission threshold 4 sigma = {sigma:.1}):");
    println!(
        "{:>4}  {:>10}  {:>18}  true",
        "rank", "estimate", "key hash"
    );
    for (i, h) in hitters.iter().enumerate() {
        let truth = pages
            .iter()
            .find(|(url, _)| key_hash(url) == h.key_hash)
            .map_or(0, |&(_, c)| c);
        println!(
            "{:>4}  {:>10.1}  {:#018x}  {}",
            i + 1,
            h.estimate,
            h.key_hash,
            truth
        );
    }

    // A point query for one key, with its closed-form error bar.
    let hot = "https://example.com/page/1";
    let estimate = deployment.point(&restored.pairs, key_hash(hot));
    println!("\npoint query {hot}: {estimate:.1} +/- {sigma:.1} (true 24000)");
    assert!((estimate - 24_000.0).abs() < 6.0 * sigma);

    // Never-reported decoys stay out, at the same threshold.
    let decoys: Vec<u64> = (0..100)
        .map(|i| key_hash(&format!("https://decoy.example/{i}")))
        .collect();
    let admitted = deployment.heavy_hitters(&restored.pairs, &decoys, 10, 4.0);
    println!(
        "decoy admission check: {} of 100 never-reported keys admitted",
        admitted.len()
    );
    assert!(admitted.is_empty(), "decoys must not clear the threshold");
}
