//! Census-style schema-first deployment: declare a multi-attribute
//! domain, declare the queries you care about by name, optimize a
//! mechanism for exactly that workload, then serve both the deployed
//! queries and *ad-hoc* follow-up questions with analytic error bars.
//!
//! ```text
//! cargo run --release --example census
//! LDP_BASELINE=rr cargo run --release --example census   # baseline instead of PGD
//! ```
//!
//! The `LDP_BASELINE` environment variable selects a closed-form
//! baseline by name (`rr`, `hadamard`, `hierarchical` — parsed with
//! `Baseline::from_str`); unset, the strategy is optimized for the
//! declared workload (Algorithm 2).

use ldp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The domain, by name: 12 age brackets × 2 sexes × 4 regions.
    let (ages, regions) = (12usize, 4usize);
    let schema = Schema::new([("age", ages), ("sex", 2), ("region", regions)]);
    let n = schema.domain_size();

    // 2. The declared workload: the questions the deployment must answer
    //    well. Everything lowers to a union of Kronecker products whose
    //    Gram stays structured — no n × n matrix is ever formed.
    let pipeline = Pipeline::for_schema(schema.clone())
        .queries([
            Query::marginal(["age", "sex"]).with_label("age x sex table"),
            Query::marginal(["region"]).with_label("region totals"),
            Query::range("age", 3..9).with_label("working-age count"),
            Query::total(),
        ])
        .epsilon(1.0);

    // 3. Mechanism: optimized for this workload, or a named baseline
    //    from the environment.
    let deployment = match std::env::var("LDP_BASELINE") {
        Ok(name) => {
            let baseline: Baseline = name.parse()?;
            eprintln!("deploying baseline: {baseline}");
            pipeline.baseline(baseline)?
        }
        Err(_) => {
            eprintln!("optimizing a strategy for the declared workload (Algorithm 2)…");
            pipeline.optimized(&OptimizerConfig::quick(7))?
        }
    };
    eprintln!(
        "users needed for 1% normalized variance: {:.0}",
        deployment.sample_complexity(0.01)
    );

    // 4. A synthetic population over the product domain (counts by
    //    (age, sex, region) cell), reported once per user.
    let mut counts = vec![0.0; n];
    for a in 0..ages {
        for s in 0..2 {
            for r in 0..regions {
                let u = schema.user_type(&[("age", a), ("sex", s), ("region", r)])?;
                // A lumpy joint distribution: mid-age bulge, region skew.
                counts[u] = (60.0 - (a as f64 - 5.0).powi(2) * 1.5) * (1.0 + r as f64 * 0.4)
                    + if s == 1 { 10.0 } else { 0.0 };
            }
        }
    }
    let population = DataVector::from_counts(counts);
    let mut rng = StdRng::seed_from_u64(42);
    let estimate = deployment.simulate(&population, &mut rng);
    eprintln!(
        "collected {} randomized reports (ε = {})",
        estimate.reports(),
        deployment.epsilon()
    );

    // 5. Deployed answers: the full workload, extracted allocation-free,
    //    then WNNLS-refined into a consistent non-negative population.
    let mut answers = Vec::new();
    estimate.answers_into(&mut answers);
    let consistent = estimate.consistent();
    let region_offset = ages * 2; // region totals follow the age×sex cells
    eprint!("estimated region totals:");
    for r in 0..regions {
        eprint!(" {:.0}", consistent.answers()[region_offset + r]);
    }
    eprintln!(" (truth: per-region sums of the synthetic population)");

    // 6. Ad-hoc serving: questions nobody declared up front, resolved by
    //    attribute name against the live estimate, each with its exact
    //    worst-case error bar.
    for (what, query) in [
        (
            "working-age women",
            Query::range("age", 3..9).and_equals("sex", 1),
        ),
        (
            "region 2 seniors",
            Query::equals("region", 2).and_range("age", 9..),
        ),
        ("even age brackets", Query::predicate("age", |v| v % 2 == 0)),
        ("everyone", Query::total()),
    ] {
        let QueryAnswer { value, stddev, .. } = estimate.answer(&query)?;
        eprintln!("  {what}: {value:.0} ± {stddev:.0}");
    }

    // 7. The same serving path stays live on a running stream.
    let client = deployment.client();
    let mut stream = deployment.stream();
    let reports: Vec<usize> = (0..5_000)
        .map(|i| client.respond(i % n, &mut rng))
        .collect();
    stream.ingest_batch(&reports)?;
    let live = stream.answer(&Query::total())?;
    eprintln!(
        "live stream after {} reports: total {:.0} ± {:.0}",
        stream.reports(),
        live.value,
        live.stddev
    );
    Ok(())
}
