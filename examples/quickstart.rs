//! Quickstart: the full workload → optimize → deploy → estimate → WNNLS
//! flow through the `Pipeline` API, compared against randomized response.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ldp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The analyst cares about the empirical CDF over a 32-bin domain.
    let n = 32;
    let epsilon = 1.0;

    println!("workload: Prefix ({n} queries over {n} types)");
    println!("privacy:  epsilon = {epsilon}\n");

    // Optimize a strategy for exactly this workload (Algorithm 2) and
    // deploy it; do the same with the randomized-response baseline.
    let optimized = Pipeline::for_workload(Prefix::new(n))
        .epsilon(epsilon)
        .optimized(&OptimizerConfig::new(42).with_iterations(150))
        .expect("optimization succeeds");
    let rr = Pipeline::for_workload(Prefix::new(n))
        .epsilon(epsilon)
        .baseline(Baseline::RandomizedResponse)
        .expect("RR supports any workload");

    // How many users do we need for 1% normalized variance? Known in
    // advance (Corollary 5.4), before a single report is collected.
    let alpha = 0.01;
    let sc_opt = optimized.sample_complexity(alpha);
    let sc_rr = rr.sample_complexity(alpha);
    println!("sample complexity at alpha = {alpha}:");
    println!("  optimized            {sc_opt:>12.0} users");
    println!("  randomized response  {sc_rr:>12.0} users");
    println!("  improvement          {:>12.2}x\n", sc_rr / sc_opt);

    // Run the local protocol on a synthetic population: every user
    // randomizes on-device via a Client, reports land in an aggregator.
    let data = ldp::data::zipf_shape(n, 1.0).sample(50_000, &mut StdRng::seed_from_u64(1));
    let client = optimized.client();
    let mut aggregator = optimized.aggregator();
    let mut rng = StdRng::seed_from_u64(2);
    for (user_type, count) in data.nonzero() {
        for _ in 0..count as u64 {
            aggregator
                .ingest(client.respond(user_type, &mut rng))
                .expect("in-range report");
        }
    }

    let estimate = optimized.estimate(&aggregator);
    println!("ran protocol on N = {} users", estimate.reports());
    println!(
        "analytic per-query stddev: {:.1} users",
        estimate.per_query_stddev()
    );

    // The workload answers Wx̂, and their worst error against the truth.
    let truth = Prefix::new(n).evaluate(data.counts());
    let max_rel = |answers: &[f64]| {
        truth
            .iter()
            .zip(answers)
            .map(|(t, e)| (t - e).abs() / data.total())
            .fold(0.0_f64, f64::max)
    };
    println!(
        "worst CDF-point error:     {:.3}% of the population",
        100.0 * max_rel(&estimate.answers())
    );

    // Post-process with WNNLS for consistent, non-negative answers.
    let consistent = estimate.consistent();
    println!(
        "after WNNLS:               {:.3}% of the population",
        100.0 * max_rel(&consistent.answers())
    );

    // Durable serving: checkpoint the stream state at a batch boundary,
    // "restart", resume — estimates are byte-equal to never stopping.
    let mut stream = optimized.stream();
    let mut rng = StdRng::seed_from_u64(3);
    let batch: Vec<usize> = (0..10_000)
        .map(|i| client.respond(i % n, &mut rng))
        .collect();
    stream.ingest_batch(&batch[..6_000]).expect("valid batch");
    let snapshot = stream.checkpoint(); // persist these bytes anywhere
    drop(stream); // …process exits…
    let mut resumed = optimized.resume(&snapshot).expect("intact snapshot");
    resumed.ingest_batch(&batch[6_000..]).expect("valid batch");
    println!(
        "\ncheckpoint/resume: {} reports across a restart ({} snapshot bytes), epoch {}",
        resumed.reports(),
        snapshot.len(),
        resumed.epoch()
    );
}
