//! Quickstart: optimize an LDP mechanism for a workload, run the local
//! protocol, and compare against randomized response.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ldp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The analyst cares about the empirical CDF over a 32-bin domain.
    let n = 32;
    let epsilon = 1.0;
    let workload = Prefix::new(n);
    let gram = workload.gram();

    println!("workload: {} ({} queries over {} types)", workload.name(), workload.num_queries(), n);
    println!("privacy:  epsilon = {epsilon}\n");

    // Optimize a strategy for exactly this workload (Algorithm 2).
    let config = OptimizerConfig::new(42).with_iterations(150);
    let optimized = optimized_mechanism(&gram, epsilon, &config).expect("optimization succeeds");

    // Baseline: randomized response with the workload-optimal
    // reconstruction (Theorem 3.10).
    let rr = randomized_response(n, epsilon, &gram).expect("RR supports any workload");

    // How many users do we need for 1% normalized variance? (Cor. 5.4)
    let alpha = 0.01;
    let p = workload.num_queries();
    let sc_opt = optimized.sample_complexity(&gram, p, alpha);
    let sc_rr = rr.sample_complexity(&gram, p, alpha);
    println!("sample complexity at alpha = {alpha}:");
    println!("  optimized            {sc_opt:>12.0} users");
    println!("  randomized response  {sc_rr:>12.0} users");
    println!("  improvement          {:>12.2}x\n", sc_rr / sc_opt);

    // Simulate the full protocol on a synthetic population.
    let data = ldp::data::zipf_shape(n, 1.0).sample(50_000, &mut StdRng::seed_from_u64(1));
    let mut rng = StdRng::seed_from_u64(2);
    let xhat = optimized.run(&data, &mut rng);

    let truth = workload.evaluate(data.counts());
    let estimate = workload.evaluate(&xhat);
    let max_rel = truth
        .iter()
        .zip(&estimate)
        .map(|(t, e)| (t - e).abs() / data.total())
        .fold(0.0_f64, f64::max);
    println!("ran protocol on N = {} users", data.total());
    println!("worst CDF-point error: {:.3}% of the population", 100.0 * max_rel);

    // Post-process with WNNLS for consistent, non-negative answers.
    let consistent = wnnls(&gram, &xhat, &WnnlsOptions::default());
    let post = workload.evaluate(&consistent);
    let max_rel_post = truth
        .iter()
        .zip(&post)
        .map(|(t, e)| (t - e).abs() / data.total())
        .fold(0.0_f64, f64::max);
    println!("after WNNLS:           {:.3}% of the population", 100.0 * max_rel_post);
}
