//! Quickstart: declare a schema and its queries, optimize, deploy,
//! estimate, serve ad-hoc questions — then the advanced flat-workload
//! path (the paper's Prefix CDF suite) for comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ldp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ── Schema-first: the front door ────────────────────────────────────
    // The analyst declares a named multi-attribute domain and the
    // queries that matter; the pipeline lowers them to a structured
    // union of Kronecker products and optimizes a mechanism for exactly
    // that workload.
    let epsilon = 1.0;
    let schema = Schema::new([("age", 8), ("device", 4)]);
    let n = schema.domain_size();
    println!("schema:   age:8 x device:4  (|domain| = {n})");
    println!("privacy:  epsilon = {epsilon}\n");

    let deployment = Pipeline::for_schema(schema.clone())
        .queries([
            Query::marginal(["age", "device"]),
            Query::range("age", 2..6).with_label("mid-age"),
            Query::total(),
        ])
        .epsilon(epsilon)
        .optimized(&OptimizerConfig::quick(42))
        .expect("optimization succeeds");

    // Collect: users randomize on-device, the aggregator counts reports.
    let client = deployment.client();
    let mut aggregator = deployment.aggregator();
    let mut rng = StdRng::seed_from_u64(2);
    for age in 0..8 {
        for device in 0..4 {
            let u = schema
                .user_type(&[("age", age), ("device", device)])
                .expect("in-domain");
            for _ in 0..(50 + 30 * age + 10 * device) {
                aggregator
                    .ingest(client.respond(u, &mut rng))
                    .expect("in-range report");
            }
        }
    }
    let estimate = deployment.estimate(&aggregator);
    println!("collected N = {} reports", estimate.reports());

    // Deployed answers (allocation-free extraction) + ad-hoc serving
    // with analytic error bars — no redeployment, resolved by name.
    let mut answers = Vec::new();
    estimate.answers_into(&mut answers);
    println!("deployed workload answers: {} values", answers.len());
    for (what, query) in [
        (
            "mid-age on device 3",
            Query::range("age", 2..6).and_equals("device", 3),
        ),
        ("odd age brackets", Query::predicate("age", |v| v % 2 == 1)),
    ] {
        let QueryAnswer { value, stddev, .. } =
            estimate.answer(&query).expect("resolvable scalar query");
        println!("  ad hoc, {what}: {value:.0} ± {stddev:.0}");
    }

    // ── Advanced: flat workloads ────────────────────────────────────────
    // Explicit 1-D workloads (the paper's suites) use the flat path; here
    // the Prefix/CDF workload, optimized vs the RR baseline.
    let n = 32;
    let optimized = Pipeline::for_workload(Prefix::new(n))
        .epsilon(epsilon)
        .optimized(&OptimizerConfig::new(42).with_iterations(150))
        .expect("optimization succeeds");
    let rr = Pipeline::for_workload(Prefix::new(n))
        .epsilon(epsilon)
        .baseline(Baseline::RandomizedResponse)
        .expect("RR supports any workload");

    // How many users do we need for 1% normalized variance? Known in
    // advance (Corollary 5.4), before a single report is collected.
    let alpha = 0.01;
    let sc_opt = optimized.sample_complexity(alpha);
    let sc_rr = rr.sample_complexity(alpha);
    println!("\nflat Prefix({n}) sample complexity at alpha = {alpha}:");
    println!("  optimized            {sc_opt:>12.0} users");
    println!("  randomized response  {sc_rr:>12.0} users");
    println!("  improvement          {:>12.2}x", sc_rr / sc_opt);

    // Run the local protocol on a synthetic population and post-process.
    let data = ldp::data::zipf_shape(n, 1.0).sample(50_000, &mut StdRng::seed_from_u64(1));
    let client = optimized.client();
    let mut aggregator = optimized.aggregator();
    let mut rng = StdRng::seed_from_u64(2);
    for (user_type, count) in data.nonzero() {
        for _ in 0..count as u64 {
            aggregator
                .ingest(client.respond(user_type, &mut rng))
                .expect("in-range report");
        }
    }
    let estimate = optimized.estimate(&aggregator);
    println!(
        "ran protocol on N = {} users; analytic per-query stddev {:.1}",
        estimate.reports(),
        estimate.per_query_stddev()
    );

    // The workload answers Wx̂, and their worst error against the truth.
    let truth = Prefix::new(n).evaluate(data.counts());
    let max_rel = |answers: &[f64]| {
        truth
            .iter()
            .zip(answers)
            .map(|(t, e)| (t - e).abs() / data.total())
            .fold(0.0_f64, f64::max)
    };
    println!(
        "worst CDF-point error:     {:.3}% of the population",
        100.0 * max_rel(&estimate.answers())
    );
    let consistent = estimate.consistent(); // WNNLS refinement
    println!(
        "after WNNLS:               {:.3}% of the population",
        100.0 * max_rel(&consistent.answers())
    );

    // Durable serving: checkpoint the stream state at a batch boundary,
    // "restart", resume — estimates are byte-equal to never stopping.
    let mut stream = optimized.stream();
    let mut rng = StdRng::seed_from_u64(3);
    let batch: Vec<usize> = (0..10_000)
        .map(|i| client.respond(i % n, &mut rng))
        .collect();
    stream.ingest_batch(&batch[..6_000]).expect("valid batch");
    let snapshot = stream.checkpoint(); // persist these bytes anywhere
    drop(stream); // …process exits…
    let mut resumed = optimized.resume(&snapshot).expect("intact snapshot");
    resumed.ingest_batch(&batch[6_000..]).expect("valid batch");
    println!(
        "\ncheckpoint/resume: {} reports across a restart ({} snapshot bytes), epoch {}",
        resumed.reports(),
        snapshot.len(),
        resumed.epoch()
    );
}
