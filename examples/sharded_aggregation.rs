//! Sharded, multi-threaded collection: one `Deployment` serving a fleet
//! of reporting workers on the shared `ldp-parallel` pool, each
//! ingesting into its own `AggregatorShard`, merged exactly at the end.
//!
//! Demonstrates the two guarantees that make parallel collection
//! first-class:
//!
//! 1. a `Deployment` (and its `Client`s) is `Send + Sync + Clone`, so
//!    every worker shares the same precomputed alias tables;
//! 2. shards hold integer counts, so N merged shards equal one
//!    sequential aggregator *bit-for-bit*, regardless of merge order.
//!
//! The worker count follows `LDP_THREADS` (default: all cores):
//!
//! ```text
//! LDP_THREADS=8 cargo run --release --example sharded_aggregation
//! ```

// The example prints wall-clock ingest timings for illustration.
#![allow(clippy::disallowed_methods)]
use std::time::Instant;

use ldp::prelude::*;
use ldp_parallel::pool;
use rand::rngs::StdRng;
use rand::SeedableRng;

const REPORTS_PER_THREAD: usize = 250_000;

fn main() {
    let n = 64;
    let deployment = Pipeline::for_workload(AllRange::new(n))
        .epsilon(1.0)
        .baseline(Baseline::HadamardResponse)
        .expect("deployable");
    let pool = pool();
    let threads = pool.threads().min(8);
    println!(
        "deployment: AllRange(n={n}), eps={}, m={} outputs, {threads} workers x {REPORTS_PER_THREAD} reports",
        deployment.epsilon(),
        deployment.client().num_outputs(),
    );

    // Each worker simulates a slice of the population: drawing the
    // user's type, randomizing it through the shared client, ingesting
    // into a worker-local shard. No locks anywhere.
    let start = Instant::now();
    let shards: Vec<AggregatorShard> = pool.par_map(threads, |t| {
        let client = deployment.client();
        let mut shard = deployment.shard();
        let mut rng = StdRng::seed_from_u64(t as u64);
        for i in 0..REPORTS_PER_THREAD {
            let user_type = (i * 37 + t * 11) % n;
            shard
                .ingest(client.respond(user_type, &mut rng))
                .expect("in-range report");
        }
        shard
    });
    let collect_time = start.elapsed();

    let aggregator = deployment.merge(shards).expect("matching shards");
    let estimate = deployment.estimate(&aggregator);
    println!(
        "collected {} reports in {collect_time:.2?} ({:.1}M reports/s)",
        estimate.reports(),
        estimate.reports() as f64 / collect_time.as_secs_f64() / 1e6,
    );

    // Exactness check: replay the identical reports sequentially.
    let mut sequential = deployment.aggregator();
    for t in 0..threads {
        let client = deployment.client();
        let mut rng = StdRng::seed_from_u64(t as u64);
        for i in 0..REPORTS_PER_THREAD {
            let user_type = (i * 37 + t * 11) % n;
            sequential
                .ingest(client.respond(user_type, &mut rng))
                .unwrap();
        }
    }
    assert_eq!(aggregator.counts(), sequential.counts());
    assert_eq!(
        estimate.data_vector(),
        deployment.estimate(&sequential).data_vector()
    );
    println!("merged shards match sequential aggregation bit-for-bit");

    let total: f64 = estimate.data_vector().iter().sum();
    println!(
        "estimated population total: {total:.2} (true {})",
        threads * REPORTS_PER_THREAD
    );
    println!(
        "analytic per-query stddev at this N: {:.1} users",
        estimate.per_query_stddev()
    );
}
