//! # ldp — the workload factorization mechanism for local differential privacy
//!
//! A from-scratch Rust implementation of McKenna, Maity, Mazumdar & Miklau,
//! *"A workload-adaptive mechanism for linear queries under local
//! differential privacy"* (VLDB 2020), together with every substrate the
//! paper depends on: dense linear algebra, the baseline LDP mechanisms it
//! compares against, a workload library with closed-form Gram matrices, the
//! projected-gradient strategy optimizer, WNNLS post-processing, and the
//! full experiment harness.
//!
//! ## Quickstart
//!
//! ```
//! use ldp::prelude::*;
//! use rand::SeedableRng;
//!
//! // 1. The analyst declares the queries they care about.
//! let workload = Prefix::new(16); // empirical CDF over a 16-bin domain
//! let gram = workload.gram();
//!
//! // 2. Optimize an epsilon-LDP mechanism for exactly that workload.
//! let epsilon = 1.0;
//! let mech = optimized_mechanism(&gram, epsilon, &OptimizerConfig::quick(7)).unwrap();
//!
//! // 3. Users randomize locally; the analyst aggregates and estimates.
//! let data = DataVector::from_counts(vec![50.0; 16]);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let xhat = mech.run(&data, &mut rng);
//! let answers = workload.evaluate(&xhat);
//! assert_eq!(answers.len(), workload.num_queries());
//!
//! // 4. Error is known in advance (Corollary 5.4): how many users does a
//! //    target accuracy need?
//! let users_needed = mech.sample_complexity(&gram, workload.num_queries(), 0.01);
//! assert!(users_needed.is_finite());
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`linalg`] | dense matrices, Jacobi eigendecomposition, SVD, pinv, Cholesky, LU |
//! | [`core`] | data vectors, strategy matrices, factorization mechanism, variance/complexity/bounds |
//! | [`workloads`] | Histogram, Prefix, All Range, marginals, Parity, custom/stacked |
//! | [`mechanisms`] | RR, Hadamard, Hierarchical, Fourier, RAPPOR, Subset Selection, local Matrix Mechanism |
//! | [`opt`] | Algorithm 1 (projection), Algorithm 2 (projected gradient descent) |
//! | [`estimation`] | WNNLS consistency post-processing, variance simulation |
//! | [`data`] | synthetic DPBench-shaped datasets (HEPTH/MEDCOST/NETTRACE-like) |

pub use ldp_core as core;
pub use ldp_data as data;
pub use ldp_estimation as estimation;
pub use ldp_linalg as linalg;
pub use ldp_mechanisms as mechanisms;
pub use ldp_opt as opt;
pub use ldp_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use ldp_core::{
        DataVector, FactorizationMechanism, LdpError, LdpMechanism, ResponseVector,
        StrategyMatrix,
    };
    pub use ldp_estimation::{wnnls, Postprocess, WnnlsOptions};
    pub use ldp_linalg::Matrix;
    pub use ldp_mechanisms::{
        hadamard_response, hierarchical, randomized_response, Calibration, Fourier,
        LocalMatrixMechanism,
    };
    pub use ldp_opt::{optimize_strategy, optimized_mechanism, OptimizerConfig};
    pub use ldp_core::protocol::{Aggregator, Client};
    pub use ldp_workloads::{
        AllMarginals, AllRange, Dense, Histogram, KWayMarginals, Parity, Prefix, Product,
        Stacked, Total, WidthRange, Workload,
    };
}
