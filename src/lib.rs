//! # ldp — the workload factorization mechanism for local differential privacy
//!
//! A from-scratch Rust implementation of McKenna, Maity, Mazumdar & Miklau,
//! *"A workload-adaptive mechanism for linear queries under local
//! differential privacy"* (VLDB 2020), together with every substrate the
//! paper depends on: dense linear algebra, the baseline LDP mechanisms it
//! compares against, a workload library with closed-form Gram matrices, the
//! projected-gradient strategy optimizer, WNNLS post-processing, and the
//! full experiment harness.
//!
//! ## Quickstart
//!
//! Applications start from a **schema**: named attributes whose product
//! is the user-type domain, with queries declared by name. The pipeline
//! lowers them to a union of Kronecker products (structured end to end —
//! nothing densifies at any domain size), optimizes an ε-LDP mechanism
//! for exactly those queries, and the resulting deployment also serves
//! *ad-hoc* questions with analytic error bars:
//!
//! ```
//! use ldp::prelude::*;
//! use rand::SeedableRng;
//!
//! // 1. Declare the domain and the queries you care about, by name.
//! let deployment = Pipeline::for_schema(Schema::new([("age", 8), ("sex", 2)]))
//!     .queries([
//!         Query::marginal(["age", "sex"]),   // the full contingency table
//!         Query::range("age", 2..6),         // plus a range you'll watch
//!         Query::total(),
//!     ])
//!     .epsilon(1.0)
//!     .optimized(&OptimizerConfig::quick(7))
//!     .unwrap();
//!
//! // 2. Error is known in advance (Corollary 5.4): how many users does a
//! //    target accuracy need?
//! assert!(deployment.sample_complexity(0.01).is_finite());
//!
//! // 3. Users randomize locally; shards aggregate concurrently.
//! let schema = deployment.schema().unwrap();
//! let client = deployment.client();
//! let mut shard = deployment.shard(); // one per thread in production
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! for age in 0..8 {
//!     for sex in 0..2 {
//!         let user_type = schema.user_type(&[("age", age), ("sex", sex)]).unwrap();
//!         for _ in 0..50 {
//!             shard.ingest(client.respond(user_type, &mut rng)).unwrap();
//!         }
//!     }
//! }
//!
//! // 4. Merge shards (exact, any order), estimate, and post-process.
//! let aggregator = deployment.merge([shard]).unwrap();
//! let estimate = deployment.estimate(&aggregator);
//! assert_eq!(estimate.reports(), 800);
//! assert_eq!(estimate.answers().len(), 18);          // Wx̂: 16 cells + 2
//! let consistent = estimate.consistent();            // WNNLS refinement
//! assert!(consistent.data_vector().iter().all(|&v| v >= 0.0));
//!
//! // 5. Ad-hoc serving: questions nobody declared up front, resolved by
//! //    name against the live estimate, each with its exact error bar.
//! let QueryAnswer { value, stddev, .. } = estimate
//!     .answer(&Query::range("age", 2..6).and_equals("sex", 1))
//!     .unwrap();
//! assert!(value.is_finite() && stddev >= 0.0);
//! ```
//!
//! Multi-threaded collection is first-class: a [`Deployment`] is
//! `Send + Sync + Clone`, clients share precomputed alias tables, and
//! [`prelude::AggregatorShard`]s (integer counts) merge bit-exactly — see
//! `examples/sharded_aggregation.rs` and the `sharded_ingestion` bench.
//!
//! ### Advanced: flat workloads
//!
//! The schema front end sits on top of the flat [`Pipeline::for_workload`]
//! path, which remains the right entry point for explicit 1-D workloads
//! (the paper's Prefix/All-Range/marginal suites, hand-built matrices,
//! `Product`/`Stacked` composites):
//!
//! ```
//! use ldp::prelude::*;
//! let deployment = Pipeline::for_workload(Prefix::new(16)) // CDF over 16 bins
//!     .epsilon(1.0)
//!     .baseline(Baseline::RandomizedResponse)
//!     .unwrap();
//! assert_eq!(deployment.workload().num_queries(), 16);
//! ```
//!
//! The crate-level entry points remain available for manual plumbing:
//! [`prelude::optimized_mechanism`], [`prelude::Client`],
//! [`prelude::Aggregator`], [`prelude::wnnls`].
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`pipeline`] | `Pipeline` → `Deployment` → `Estimate`: the top-level deployment API, schema front door, ad-hoc query serving |
//! | [`linalg`] | dense matrices, Jacobi eigendecomposition, SVD, pinv, Cholesky, LU |
//! | [`core`] | data vectors, strategy matrices, factorization mechanism, client/shard/aggregator protocol, variance/complexity/bounds |
//! | [`workloads`] | `Schema`/`Query` DSL over multi-attribute domains; Histogram, Prefix, All Range, marginals, Parity, custom/stacked |
//! | [`mechanisms`] | RR, Hadamard, Hierarchical, Fourier, RAPPOR, Subset Selection, local Matrix Mechanism |
//! | [`opt`] | Algorithm 1 (projection), Algorithm 2 (projected gradient descent) |
//! | [`estimation`] | WNNLS consistency post-processing, variance simulation |
//! | [`store`] | durability: checksummed snapshots, strategy registry, checkpoint/resume |
//! | [`sparse`] | open-domain frequency oracles (OLH, sparse Hadamard), sharded sparse aggregation, top-k heavy hitters |
//! | [`data`] | synthetic DPBench-shaped datasets (HEPTH/MEDCOST/NETTRACE-like) |
//!
//! ## Open-domain workloads
//!
//! Attributes whose values cannot be enumerated up front (URLs, search
//! strings, arbitrary identifiers) never lower to a dense `[n]` index.
//! Declare them with [`workloads::Schema::open`] beside the dense
//! attributes, and serve them through the [`sparse`] crate's frequency
//! oracles — point queries and variance-aware top-k heavy hitters with
//! the same bit-determinism and checkpoint/resume guarantees as the
//! dense pipeline:
//!
//! ```
//! use ldp::prelude::*;
//! use rand::SeedableRng;
//!
//! // A mixed schema: dense demographics plus an open url attribute.
//! let schema = Schema::new([("age", 8), ("sex", 2)]).open("url");
//! assert!(schema.is_open("url"));
//!
//! // Open attributes are served by a sparse deployment.
//! let dep = SparseDeployment::hadamard("url", 2.0, 12).unwrap();
//! let client = dep.client();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut shard = SparseShard::new();
//! for _ in 0..2000 {
//!     shard.absorb(client.respond("https://example.com/", &mut rng));
//! }
//! let mut ingestor = dep.ingestor();
//! ingestor.absorb_shard(&mut shard);
//!
//! // Point estimate with an analytic error bar.
//! let est = dep.point(ingestor.pairs(), key_hash("https://example.com/"));
//! assert!((est - 2000.0).abs() < 6.0 * dep.oracle().stddev(2000));
//!
//! // Dense queries that touch an open attribute fail with a typed
//! // routing error instead of a wrong dense answer.
//! let q = Query::key("url", "https://example.com/");
//! assert!(q.as_key_query().is_some()); // the sparse routing hook
//! ```

pub use ldp_core as core;
pub use ldp_data as data;
pub use ldp_estimation as estimation;
pub use ldp_linalg as linalg;
pub use ldp_mechanisms as mechanisms;
pub use ldp_opt as opt;
pub use ldp_sparse as sparse;
pub use ldp_store as store;
pub use ldp_workloads as workloads;

pub mod pipeline;

pub use pipeline::{
    Baseline, Deployment, Estimate, Pipeline, QueryAnswer, SchemaPipeline, StreamIngestor,
};

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::pipeline::{
        Baseline, Deployment, Estimate, Pipeline, QueryAnswer, SchemaPipeline, StreamIngestor,
    };
    pub use ldp_core::protocol::{Aggregator, AggregatorShard, Client};
    pub use ldp_core::{
        DataVector, Deployable, FactorizationMechanism, LdpError, LdpMechanism, ResponseVector,
        StrategyMatrix,
    };
    pub use ldp_estimation::{wnnls, Postprocess, WnnlsOptions};
    pub use ldp_linalg::{Gram, LinOp, Matrix};
    pub use ldp_mechanisms::{
        hadamard_response, hierarchical, randomized_response, Calibration, Fourier,
        LocalMatrixMechanism,
    };
    pub use ldp_opt::{
        optimize_strategy, optimized_mechanism, Algorithm, OptimizerConfig, Workspace,
    };
    pub use ldp_sparse::{
        key_hash, sparse_fingerprint, HeavyHitter, SparseClient, SparseDeployment, SparseIngestor,
        SparseShard,
    };
    pub use ldp_store::{CacheOutcome, StoreError, StrategyRegistry};
    pub use ldp_workloads::{
        AllMarginals, AllRange, Dense, Domain, Histogram, KWayMarginals, Parity, Prefix, Product,
        Query, Schema, SchemaError, SchemaWorkload, Stacked, Total, WidthRange, Workload,
    };
}
