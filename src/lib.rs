//! # ldp — the workload factorization mechanism for local differential privacy
//!
//! A from-scratch Rust implementation of McKenna, Maity, Mazumdar & Miklau,
//! *"A workload-adaptive mechanism for linear queries under local
//! differential privacy"* (VLDB 2020), together with every substrate the
//! paper depends on: dense linear algebra, the baseline LDP mechanisms it
//! compares against, a workload library with closed-form Gram matrices, the
//! projected-gradient strategy optimizer, WNNLS post-processing, and the
//! full experiment harness.
//!
//! ## Quickstart
//!
//! The paper's workflow is one conceptual pipeline — declare a workload,
//! optimize a strategy for it, deploy clients, aggregate reports, estimate
//! and post-process — and [`Pipeline`] expresses it as one fluent flow:
//!
//! ```
//! use ldp::prelude::*;
//! use rand::SeedableRng;
//!
//! // 1. Declare the queries you care about and the privacy budget, then
//! //    optimize an ε-LDP mechanism for exactly that workload.
//! let deployment = Pipeline::for_workload(Prefix::new(16)) // CDF over 16 bins
//!     .epsilon(1.0)
//!     .optimized(&OptimizerConfig::quick(7))
//!     .unwrap();
//!
//! // 2. Error is known in advance (Corollary 5.4): how many users does a
//! //    target accuracy need?
//! assert!(deployment.sample_complexity(0.01).is_finite());
//!
//! // 3. Users randomize locally; shards aggregate concurrently.
//! let client = deployment.client();
//! let mut shard = deployment.shard(); // one per thread in production
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! for user_type in 0..16 {
//!     for _ in 0..50 {
//!         shard.ingest(client.respond(user_type, &mut rng)).unwrap();
//!     }
//! }
//!
//! // 4. Merge shards (exact, any order), estimate, and post-process.
//! let aggregator = deployment.merge([shard]).unwrap();
//! let estimate = deployment.estimate(&aggregator);
//! assert_eq!(estimate.reports(), 800);
//! assert_eq!(estimate.answers().len(), 16);          // Wx̂
//! let consistent = estimate.consistent();            // WNNLS refinement
//! assert!(consistent.data_vector().iter().all(|&v| v >= 0.0));
//! ```
//!
//! Multi-threaded collection is first-class: a [`Deployment`] is
//! `Send + Sync + Clone`, clients share precomputed alias tables, and
//! [`prelude::AggregatorShard`]s (integer counts) merge bit-exactly — see
//! `examples/sharded_aggregation.rs` and the `sharded_ingestion` bench.
//! The crate-level entry points used above remain available for manual
//! plumbing: [`prelude::optimized_mechanism`], [`prelude::Client`],
//! [`prelude::Aggregator`], [`prelude::wnnls`].
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`pipeline`] | `Pipeline` → `Deployment` → `Estimate`: the top-level deployment API |
//! | [`linalg`] | dense matrices, Jacobi eigendecomposition, SVD, pinv, Cholesky, LU |
//! | [`core`] | data vectors, strategy matrices, factorization mechanism, client/shard/aggregator protocol, variance/complexity/bounds |
//! | [`workloads`] | Histogram, Prefix, All Range, marginals, Parity, custom/stacked |
//! | [`mechanisms`] | RR, Hadamard, Hierarchical, Fourier, RAPPOR, Subset Selection, local Matrix Mechanism |
//! | [`opt`] | Algorithm 1 (projection), Algorithm 2 (projected gradient descent) |
//! | [`estimation`] | WNNLS consistency post-processing, variance simulation |
//! | [`store`] | durability: checksummed snapshots, strategy registry, checkpoint/resume |
//! | [`data`] | synthetic DPBench-shaped datasets (HEPTH/MEDCOST/NETTRACE-like) |

pub use ldp_core as core;
pub use ldp_data as data;
pub use ldp_estimation as estimation;
pub use ldp_linalg as linalg;
pub use ldp_mechanisms as mechanisms;
pub use ldp_opt as opt;
pub use ldp_store as store;
pub use ldp_workloads as workloads;

pub mod pipeline;

pub use pipeline::{Baseline, Deployment, Estimate, Pipeline, StreamIngestor};

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::pipeline::{Baseline, Deployment, Estimate, Pipeline, StreamIngestor};
    pub use ldp_core::protocol::{Aggregator, AggregatorShard, Client};
    pub use ldp_core::{
        DataVector, Deployable, FactorizationMechanism, LdpError, LdpMechanism, ResponseVector,
        StrategyMatrix,
    };
    pub use ldp_estimation::{wnnls, Postprocess, WnnlsOptions};
    pub use ldp_linalg::{Gram, LinOp, Matrix};
    pub use ldp_mechanisms::{
        hadamard_response, hierarchical, randomized_response, Calibration, Fourier,
        LocalMatrixMechanism,
    };
    pub use ldp_opt::{optimize_strategy, optimized_mechanism, OptimizerConfig, Workspace};
    pub use ldp_store::{CacheOutcome, StoreError, StrategyRegistry};
    pub use ldp_workloads::{
        AllMarginals, AllRange, Dense, Histogram, KWayMarginals, Parity, Prefix, Product, Stacked,
        Total, WidthRange, Workload,
    };
}
