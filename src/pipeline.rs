//! The top-level deployment pipeline: one fluent path from *schema* (or
//! flat workload) to *consistent estimates* and *ad-hoc query serving*,
//! replacing the hand-threaded five-crate flow (`gram()` →
//! `OptimizerConfig` → `FactorizationMechanism` → `Client`/`Aggregator`
//! → `evaluate()`/`wnnls`).
//!
//! ```text
//! Pipeline::for_schema(schema).queries([...])            // the schema-first front door
//!         .epsilon(ε).optimized(&cfg)                    // or .baseline(..) / .strategy(..)
//!         └─> Deployment ──clients()──> many threads/devices
//!                       ──shards()───> concurrent ingestion ──merge()──> Aggregator
//!                       ──estimate()─> Estimate { x̂, Wx̂, variance, complexity }
//!                                            ├─.answer(&Query)─> QueryAnswer {value, ±stddev}
//!                                            └─.consistent()──> WNNLS-refined Estimate
//! ```
//!
//! A [`Schema`] names the attributes of a multi-dimensional domain;
//! [`Query`] objects (marginals, ranges, predicates, totals) lower to a
//! union of Kronecker products whose Gram stays structured at any domain
//! size. Deployments built this way additionally serve **ad-hoc**
//! questions: [`Deployment::answer`] / [`Estimate::answer`] /
//! [`StreamIngestor::answer`] resolve a [`Query`] by name at call time
//! and return the estimated count with its exact analytic error bar —
//! no workload matrix, no redeployment. [`Pipeline::for_workload`]
//! remains the advanced path for flat (non-schema) workloads.
//!
//! A [`Deployment`] is cheap to clone (an `Arc`) and `Send + Sync`; the
//! [`Client`]s it hands out share the mechanism's precomputed alias
//! tables, and [`AggregatorShard`]s ingest `u64` counts concurrently and
//! merge exactly — any shard topology produces bit-identical results to
//! sequential collection. [`Deployment::aggregate`] packages that as a
//! one-call parallel batch ingest over the `ldp-parallel` pool
//! (`LDP_THREADS` workers, one private shard each, exact merge).
//!
//! ## Scaling to large domains
//!
//! The pipeline never densifies a structured workload: it holds the
//! workload's [`Gram`] *operator* (`G = WᵀW`), and every analytic
//! read-out — variance profiles, sample complexity, WNNLS consistency —
//! consumes it through matrix-vector products. Prefix/range Grams are
//! `O(n)` structures with `O(n)` products, marginal/parity Grams are
//! Walsh–Hadamard kernels (`O(n log n)`), and `Product` workloads carry
//! a genuine Kronecker operator, so multi-dimensional domains never pay
//! an `n₁n₂ × n₁n₂` blow-up. Only [`Pipeline::optimized`] materializes
//! the Gram — once, into the optimizer's reusable workspace, because
//! Algorithm 2's inner solves are `O(n³)` dense regardless (at n = 4096
//! that buffer is 128 MiB; the answer paths stay implicit). The explicit
//! `p × n` workload matrix (`Workload::matrix()`) is an opt-in escape
//! hatch that nothing in the pipeline calls — All Range at n = 1024
//! would be 524 800 × 1024.
//!
//! ```
//! use ldp::prelude::*;
//! use rand::SeedableRng;
//!
//! let deployment = Pipeline::for_workload(Prefix::new(16))
//!     .epsilon(1.0)
//!     .baseline(Baseline::RandomizedResponse)
//!     .unwrap();
//!
//! // Clients randomize on-device; shards aggregate wherever reports land.
//! let client = deployment.client();
//! let mut shard = deployment.shard();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! for user_type in [3usize, 3, 9, 12, 1, 3] {
//!     shard.ingest(client.respond(user_type, &mut rng)).unwrap();
//! }
//!
//! let aggregator = deployment.merge([shard]).unwrap();
//! let estimate = deployment.estimate(&aggregator);
//! assert_eq!(estimate.reports(), 6);
//! assert_eq!(estimate.answers().len(), 16);
//! let consistent = estimate.consistent();
//! assert!(consistent.data_vector().iter().all(|&v| v >= 0.0));
//! ```

use std::fmt;
use std::sync::Arc;

use ldp_core::protocol::{Aggregator, AggregatorShard, Client};
use ldp_core::{
    variance, DataVector, Deployable, FactorizationMechanism, LdpError, StrategyMatrix,
};
use ldp_estimation::{wnnls, WnnlsOptions};
use ldp_linalg::stablehash::Fnv64;
use ldp_linalg::{dot, Gram, Matrix};
use ldp_mechanisms::{hadamard_response, hierarchical, randomized_response};
use ldp_opt::{optimized_mechanism, OptimizerConfig};
use ldp_store::snapshot::{decode_checkpoint, encode_checkpoint, IngestCheckpoint};
use ldp_store::{CacheOutcome, StoreError, StrategyRegistry};
use ldp_workloads::{Query, Schema, SchemaWorkload, Workload};
use rand::RngCore;

/// Closed-form mechanisms a pipeline can deploy without running the
/// optimizer. Each is built as a [`FactorizationMechanism`]
/// (ldp-core) over its Table-1 strategy matrix, with the
/// workload-optimal reconstruction of Theorem 3.10.
///
/// The enum is non-exhaustive — future PRs add baselines — so bench bins
/// and examples select one by name ([`Baseline::from_str`]) instead of
/// matching exhaustively:
///
/// ```
/// use ldp::prelude::*;
/// let b: Baseline = "randomized-response".parse().unwrap();
/// assert_eq!(b, Baseline::RandomizedResponse);
/// assert_eq!("rr".parse::<Baseline>().unwrap(), b);
/// assert!("nonsense".parse::<Baseline>().is_err());
/// ```
///
/// [`FactorizationMechanism`]: ldp_core::FactorizationMechanism
/// [`Baseline::from_str`]: std::str::FromStr
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Baseline {
    /// Warner's randomized response (`m = n`).
    RandomizedResponse,
    /// Hadamard response (Acharya et al.), `m = 2^⌈log₂(n+1)⌉`.
    HadamardResponse,
    /// Hierarchical / tree-based mechanism (Cormode et al.).
    Hierarchical,
}

impl std::str::FromStr for Baseline {
    type Err = LdpError;

    /// Parses a baseline name as used on CLI flags and environment
    /// variables. Case, `-`, `_`, and spaces are ignored; common
    /// shorthands (`rr`, `hadamard`, `tree`) are accepted.
    fn from_str(s: &str) -> Result<Self, LdpError> {
        let mut norm = s.trim().to_ascii_lowercase();
        norm.retain(|c| !matches!(c, '-' | '_' | ' '));
        match norm.as_str() {
            "rr" | "randomizedresponse" => Ok(Baseline::RandomizedResponse),
            "hr" | "hadamard" | "hadamardresponse" => Ok(Baseline::HadamardResponse),
            "hier" | "tree" | "hierarchical" => Ok(Baseline::Hierarchical),
            _ => Err(LdpError::UnknownBaseline(s.to_string())),
        }
    }
}

impl std::fmt::Display for Baseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Baseline::RandomizedResponse => "randomized-response",
            Baseline::HadamardResponse => "hadamard-response",
            Baseline::Hierarchical => "hierarchical",
        };
        write!(f, "{name}")
    }
}

/// Builder for a [`Deployment`]: declare the workload, set the privacy
/// budget, then pick the mechanism.
///
/// Entry point: [`Pipeline::for_workload`]. Terminal methods:
/// [`Pipeline::optimized`], [`Pipeline::baseline`], [`Pipeline::strategy`],
/// [`Pipeline::deploy`].
pub struct Pipeline {
    workload: Arc<dyn Workload + Send + Sync>,
    epsilon: f64,
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("workload", &self.workload.name())
            .field("epsilon", &self.epsilon)
            .finish_non_exhaustive()
    }
}

impl Pipeline {
    /// Starts a schema-first pipeline: declare the multi-attribute
    /// domain, then the queries — the front door for everything with
    /// more than one attribute.
    ///
    /// ```
    /// use ldp::prelude::*;
    ///
    /// let deployment = Pipeline::for_schema(Schema::new([("age", 16), ("sex", 2)]))
    ///     .queries([
    ///         Query::marginal(["age"]),
    ///         Query::range("age", 4..12).and_equals("sex", 1),
    ///         Query::total(),
    ///     ])
    ///     .epsilon(1.0)
    ///     .baseline(Baseline::RandomizedResponse)
    ///     .unwrap();
    /// assert_eq!(deployment.workload().num_queries(), 18);
    /// assert!(deployment.schema().is_some()); // ad-hoc `answer()` available
    /// ```
    pub fn for_schema(schema: Schema) -> SchemaPipeline {
        SchemaPipeline {
            schema: Arc::new(schema),
        }
    }

    /// Starts a pipeline for an explicit flat workload over `[n]` — the
    /// advanced path for workloads that are not schema-shaped (paper
    /// suites, hand-built matrices, composites). Schema-declared
    /// applications should prefer [`Pipeline::for_schema`], which also
    /// unlocks ad-hoc [`Deployment::answer`] serving. The privacy budget
    /// defaults to `ε = 1.0`; set it explicitly with
    /// [`Pipeline::epsilon`].
    pub fn for_workload(workload: impl Workload + Send + Sync + 'static) -> Self {
        Self::for_shared_workload(Arc::new(workload))
    }

    /// Like [`Pipeline::for_workload`] for an already-shared workload
    /// trait object.
    pub fn for_shared_workload(workload: Arc<dyn Workload + Send + Sync>) -> Self {
        Self {
            workload,
            epsilon: 1.0,
        }
    }

    /// Sets the ε-LDP privacy budget every client's report satisfies.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Validates the builder's budget before any terminal does real work
    /// — every terminal rejects a non-finite or non-positive ε the same
    /// way, without first materializing a Gram or running an optimizer.
    fn validated_epsilon(&self) -> Result<f64, LdpError> {
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(LdpError::InvalidEpsilon(self.epsilon));
        }
        Ok(self.epsilon)
    }

    /// Optimizes a strategy for exactly this workload (Algorithm 2) and
    /// deploys the resulting factorization mechanism.
    ///
    /// # Errors
    /// Propagates optimizer and mechanism-construction failures
    /// ([`LdpError::InvalidEpsilon`], [`LdpError::OptimizationFailed`], …).
    pub fn optimized(self, config: &OptimizerConfig) -> Result<Deployment, LdpError> {
        let epsilon = self.validated_epsilon()?;
        let gram = self.workload.gram();
        let mechanism = optimized_mechanism(&gram, epsilon, config)?;
        Deployment::assemble(self.workload, gram, Arc::new(mechanism))
    }

    /// Like [`Pipeline::optimized`], but backed by a persistent
    /// [`StrategyRegistry`]: if a strategy for exactly this
    /// `(workload, ε, config)` was optimized before — in this process or
    /// any earlier one — PGD is **skipped entirely** and the deployment
    /// warm-starts from disk with a bit-identical strategy matrix. On a
    /// miss the optimizer runs once and the result is persisted.
    ///
    /// Returns the deployment together with the [`CacheOutcome`] so
    /// callers (and perf dashboards) can distinguish warm from cold.
    ///
    /// # Errors
    /// Optimizer and mechanism failures wrapped as
    /// [`StoreError::Mechanism`], plus registry I/O or decode failures.
    pub fn optimized_cached(
        self,
        config: &OptimizerConfig,
        registry: &StrategyRegistry,
    ) -> Result<(Deployment, CacheOutcome), StoreError> {
        let epsilon = self.validated_epsilon()?;
        // One Gram construction serves keying, optimization, and
        // assembly — Gram assembly is real work for dense/marginal
        // workloads, so it must not be repeated per stage.
        let gram = self.workload.gram();
        let key = ldp_store::Fingerprint::with_gram(&*self.workload, &gram, epsilon, config);
        let (strategy, outcome) = registry.get_or_optimize_keyed(key, &gram, epsilon, config)?;
        // Identical to the tail of `optimized_mechanism`: the privacy
        // budget is trusted (the optimizer projected onto the ε-LDP
        // simplex; the decode path revalidated stochasticity), and the
        // reconstruction recompute is deterministic — bit-equal Q gives
        // bit-equal K, so warm and cold deployments are interchangeable.
        let mechanism = FactorizationMechanism::new_unchecked_privacy(strategy, &gram, epsilon)?
            .with_name("Optimized");
        let deployment = Deployment::assemble(self.workload, gram, Arc::new(mechanism))?;
        Ok((deployment, outcome))
    }

    /// Deploys a closed-form baseline mechanism at this workload/budget.
    ///
    /// # Errors
    /// [`LdpError::WorkloadNotSupported`] if the baseline cannot answer
    /// the workload, [`LdpError::InvalidEpsilon`] for a bad budget.
    pub fn baseline(self, baseline: Baseline) -> Result<Deployment, LdpError> {
        let epsilon = self.validated_epsilon()?;
        let n = self.workload.domain_size();
        let gram = self.workload.gram();
        let mechanism = match baseline {
            Baseline::RandomizedResponse => randomized_response(n, epsilon, &gram)?,
            Baseline::HadamardResponse => hadamard_response(n, epsilon, &gram)?,
            Baseline::Hierarchical => hierarchical(n, epsilon, &gram)?,
        };
        Deployment::assemble(self.workload, gram, Arc::new(mechanism))
    }

    /// Deploys a hand-built strategy matrix, validating ε-LDP and that
    /// the workload is answerable (Theorem 3.10's row-space condition).
    ///
    /// # Errors
    /// [`LdpError::InvalidEpsilon`], [`LdpError::PrivacyViolation`],
    /// [`LdpError::WorkloadNotSupported`], or
    /// [`LdpError::DimensionMismatch`] from mechanism construction.
    pub fn strategy(self, strategy: StrategyMatrix) -> Result<Deployment, LdpError> {
        let epsilon = self.validated_epsilon()?;
        let gram = self.workload.gram();
        let mechanism = FactorizationMechanism::new(strategy, &gram, epsilon)?;
        Deployment::assemble(self.workload, gram, Arc::new(mechanism))
    }

    /// Deploys an existing [`Deployable`] mechanism — the escape hatch
    /// that lets *any* mechanism enter the pipeline. The mechanism's own
    /// privacy budget governs; the builder's [`Pipeline::epsilon`] is
    /// ignored here.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] if the mechanism's domain size
    /// disagrees with the workload's.
    pub fn deploy(
        self,
        mechanism: impl Deployable + Send + Sync + 'static,
    ) -> Result<Deployment, LdpError> {
        let gram = self.workload.gram();
        Deployment::assemble(self.workload, gram, Arc::new(mechanism))
    }
}

/// The schema stage of a schema-first pipeline: holds the declared
/// [`Schema`] and waits for the query set. Produced by
/// [`Pipeline::for_schema`]; consumed by [`SchemaPipeline::queries`].
pub struct SchemaPipeline {
    schema: Arc<Schema>,
}

impl fmt::Debug for SchemaPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchemaPipeline")
            .field("schema", &self.schema)
            .finish()
    }
}

impl SchemaPipeline {
    /// Lowers `queries` to a structured [`SchemaWorkload`] (a union of
    /// Kronecker products — nothing densifies at any domain size) and
    /// continues the pipeline with it.
    ///
    /// # Panics
    /// Panics on an invalid query set (unknown attribute, out-of-range
    /// value, empty selection, no queries) — declaring the deployed
    /// workload is developer code, and a misdeclared workload must fail
    /// loudly. Dynamic sources should use
    /// [`SchemaPipeline::try_queries`].
    pub fn queries(self, queries: impl IntoIterator<Item = Query>) -> Pipeline {
        self.try_queries(queries)
            // ldp-lint: allow(no-unwrap-in-lib) -- documented `# Panics`
            // front door for statically declared workloads; dynamic query
            // sets go through `try_queries` (the typed-error path).
            .unwrap_or_else(|e| panic!("invalid schema workload: {e}"))
    }

    /// [`SchemaPipeline::queries`] with a typed error instead of a panic,
    /// for query sets assembled from configuration or user input.
    ///
    /// # Errors
    /// [`LdpError::InvalidQuery`] describing the first query that failed
    /// to resolve.
    pub fn try_queries(
        self,
        queries: impl IntoIterator<Item = Query>,
    ) -> Result<Pipeline, LdpError> {
        let queries: Vec<Query> = queries.into_iter().collect();
        let workload = SchemaWorkload::new(Arc::clone(&self.schema), &queries)
            .map_err(|e| LdpError::InvalidQuery(e.to_string()))?;
        Ok(Pipeline::for_shared_workload(Arc::new(workload)))
    }

    /// The declared schema (shared handle).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

struct DeploymentInner {
    workload: Arc<dyn Workload + Send + Sync>,
    /// The workload's Gram *operator* — structured workloads (prefix,
    /// range, Kronecker products, marginals) stay implicit end-to-end;
    /// nothing in the deployment ever materializes an `n × n` matrix.
    gram: Gram,
    mechanism: Arc<dyn Deployable + Send + Sync>,
    /// Per-user-type variance contributions `T_u` (Theorem 3.4), cached
    /// because every analytic read-out derives from them.
    profile: Vec<f64>,
    /// Stable fingerprint of the deployed mechanism (dimensions, budget,
    /// reconstruction bits): stamped into every streaming checkpoint so
    /// a snapshot can never be resumed into a different deployment.
    /// Hashing `K` is `O(nm)` serial work, so it is computed lazily on
    /// the first `checkpoint()`/`resume()` — deployments that never
    /// stream never pay for it.
    binding: std::sync::OnceLock<u64>,
}

/// A deployed mechanism bound to its workload: hands out [`Client`]s and
/// [`AggregatorShard`]s, merges shards, and turns aggregators into
/// [`Estimate`]s. Cloning is O(1) (`Arc`), and the deployment is
/// `Send + Sync`, so one instance can serve every thread of a collection
/// fleet.
#[derive(Clone)]
pub struct Deployment {
    inner: Arc<DeploymentInner>,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("workload", &self.inner.workload.name())
            .field("domain_size", &self.inner.workload.domain_size())
            .field("num_outputs", &self.inner.mechanism.num_outputs())
            .field("epsilon", &self.inner.mechanism.epsilon())
            .field("schema", &self.inner.workload.schema().is_some())
            .finish_non_exhaustive()
    }
}

impl Deployment {
    fn assemble(
        workload: Arc<dyn Workload + Send + Sync>,
        gram: Gram,
        mechanism: Arc<dyn Deployable + Send + Sync>,
    ) -> Result<Self, LdpError> {
        if mechanism.domain_size() != workload.domain_size() {
            return Err(LdpError::DimensionMismatch {
                context: "deployment domain",
                expected: workload.domain_size(),
                actual: mechanism.domain_size(),
            });
        }
        let profile = mechanism.variance_profile(&gram);
        Ok(Self {
            inner: Arc::new(DeploymentInner {
                workload,
                gram,
                mechanism,
                profile,
                binding: std::sync::OnceLock::new(),
            }),
        })
    }

    /// The checkpoint-binding fingerprint, computed on first use (it
    /// hashes the workload's semantic fingerprint — schema, queries, Gram
    /// bits — plus every bit of the reconstruction matrix). Two
    /// deployments of the *same* mechanism for *different* workloads
    /// therefore bind differently: a checkpoint can never resume into a
    /// deployment that would answer different questions with its counts.
    ///
    /// Public because serving tiers use it as an end-to-end identity
    /// check: the ldp-serve daemon reports it in the `Info` handshake so
    /// a client can verify it is talking to the deployment it previously
    /// submitted reports to (the same fingerprint the snapshot codec
    /// enforces on [`Deployment::resume`]).
    pub fn binding(&self) -> u64 {
        *self.inner.binding.get_or_init(|| {
            let mechanism = &self.inner.mechanism;
            let mut h = Fnv64::new();
            h.write_str("ldp-deployment-binding/2");
            h.write_u64(self.inner.workload.fingerprint_with_gram(&self.inner.gram));
            h.write_u64(self.inner.workload.domain_size() as u64);
            h.write_u64(mechanism.num_outputs() as u64);
            h.write_f64(mechanism.epsilon());
            for &v in mechanism.reconstruction_matrix().as_slice() {
                h.write_f64(v);
            }
            h.finish()
        })
    }

    /// A client sharing the mechanism's precomputed alias tables; O(1),
    /// hand one to every reporting thread or device.
    pub fn client(&self) -> Client {
        self.inner.mechanism.client()
    }

    /// An empty aggregation shard; create one per ingestion thread.
    pub fn shard(&self) -> AggregatorShard {
        AggregatorShard::new(self.inner.mechanism.num_outputs())
    }

    /// `count` empty shards, ready to move into worker threads.
    pub fn shards(&self, count: usize) -> Vec<AggregatorShard> {
        (0..count).map(|_| self.shard()).collect()
    }

    /// A full (reconstruction-carrying) sequential aggregator.
    pub fn aggregator(&self) -> Aggregator {
        Aggregator::from_reconstruction(self.inner.mechanism.reconstruction_matrix().clone())
    }

    /// Folds any number of shards into one aggregator. Integer counts
    /// make this exact: the result is bit-identical to sequential
    /// ingestion of the same reports in any order.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] if a shard's output count
    /// disagrees with the deployment's.
    pub fn merge(
        &self,
        shards: impl IntoIterator<Item = AggregatorShard>,
    ) -> Result<Aggregator, LdpError> {
        let mut aggregator = self.aggregator();
        for shard in shards {
            aggregator.merge(shard)?;
        }
        Ok(aggregator)
    }

    /// Ingests a whole batch of reports into a fresh [`Aggregator`],
    /// splitting the batch across the [`ldp_parallel`] pool — one
    /// private shard per worker, merged in chunk order at the end.
    /// Counts are integers, so the result is **bit-identical** to
    /// [`Aggregator::ingest_batch`] on one thread, at any thread count
    /// (set `LDP_THREADS` to pin the worker count).
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] naming the first invalid report
    /// (in batch order); like the sequential batch path, nothing is
    /// counted in that case.
    pub fn aggregate(&self, reports: &[usize]) -> Result<Aggregator, LdpError> {
        // Ingesting a report is a couple of nanoseconds of integer work;
        // below this batch size scoped-thread spawns would dominate, so
        // small batches take the sequential path (same result — counts
        // are exact either way).
        const PAR_MIN_REPORTS: usize = 1 << 14;
        let pool = ldp_parallel::pool();
        let workers = if reports.len() >= PAR_MIN_REPORTS {
            pool.threads().min(reports.len()).max(1)
        } else {
            1
        };
        let chunk_len = reports.len().div_ceil(workers).max(1);
        let shards: Vec<Result<AggregatorShard, LdpError>> = pool.par_map(workers, |w| {
            let lo = (w * chunk_len).min(reports.len());
            let hi = ((w + 1) * chunk_len).min(reports.len());
            let mut shard = self.shard();
            shard.ingest_batch(&reports[lo..hi])?;
            Ok(shard)
        });
        // Chunk-order fold: the first bad report in batch order is the
        // first error here, matching the sequential validation.
        let mut aggregator = self.aggregator();
        for shard in shards {
            aggregator.merge(shard?)?;
        }
        Ok(aggregator)
    }

    /// Opens a fresh resumable ingestion stream: batches go in,
    /// [`StreamIngestor::checkpoint`] captures the exact state at any
    /// batch boundary, and [`Deployment::resume`] restores it — after
    /// which the run is bit-for-bit equal to one that was never
    /// interrupted.
    pub fn stream(&self) -> StreamIngestor {
        StreamIngestor {
            deployment: self.clone(),
            aggregator: self.aggregator(),
            epoch: 0,
            batches: 0,
        }
    }

    /// Restores an ingestion stream from checkpoint bytes written by
    /// [`StreamIngestor::checkpoint`]. Counts are exact integers, so
    /// resuming at batch boundary `k` and ingesting batches `k..` yields
    /// estimates **byte-equal** to an uninterrupted run — the streaming
    /// extension of the PR 3 determinism contract (asserted in
    /// `tests/durability.rs`).
    ///
    /// # Errors
    /// Any codec defect ([`StoreError::Truncated`],
    /// [`StoreError::ChecksumMismatch`], …);
    /// [`StoreError::BindingMismatch`] if the checkpoint was written by a
    /// *different* deployment — a different workload schema/query set,
    /// mechanism, or budget (the binding fingerprint covers all of them);
    /// or [`StoreError::Malformed`] if its counts disagree with this
    /// mechanism's output dimension.
    pub fn resume(&self, checkpoint: &[u8]) -> Result<StreamIngestor, StoreError> {
        let cp = decode_checkpoint(checkpoint)?;
        let binding = self.binding();
        if cp.binding != binding {
            return Err(StoreError::BindingMismatch {
                checkpoint: cp.binding,
                deployment: binding,
            });
        }
        let shard = AggregatorShard::from_counts(cp.counts);
        let aggregator =
            Aggregator::from_parts(self.inner.mechanism.reconstruction_matrix().clone(), shard)?;
        Ok(StreamIngestor {
            deployment: self.clone(),
            aggregator,
            epoch: cp.epoch,
            batches: cp.batches,
        })
    }

    /// Reads the aggregator's current state into an [`Estimate`].
    /// Non-destructive: collection can continue afterwards.
    ///
    /// # Panics
    /// Panics if the aggregator belongs to a deployment with a different
    /// number of outputs — mixing deployments would silently pair `x̂`
    /// with the wrong workload and variance profile.
    pub fn estimate(&self, aggregator: &Aggregator) -> Estimate {
        assert_eq!(
            aggregator.counts().len(),
            self.inner.mechanism.num_outputs(),
            "aggregator output count must match the deployment's mechanism"
        );
        Estimate {
            inner: Arc::clone(&self.inner),
            xhat: aggregator.estimate(),
            reports: aggregator.reports(),
        }
    }

    /// Simulates the whole population in one call (the paper's
    /// experiment path): every user in `data` reports once.
    ///
    /// # Panics
    /// Panics if `data`'s domain size disagrees with the deployment's.
    pub fn simulate(&self, data: &DataVector, rng: &mut dyn RngCore) -> Estimate {
        let xhat = self.inner.mechanism.run(data, rng);
        Estimate {
            inner: Arc::clone(&self.inner),
            xhat,
            reports: data.rounded().total() as u64,
        }
    }

    /// The workload this deployment answers.
    pub fn workload(&self) -> &(dyn Workload + Send + Sync) {
        &*self.inner.workload
    }

    /// The schema this deployment was declared over, when it was built
    /// through [`Pipeline::for_schema`] — the prerequisite for ad-hoc
    /// [`Deployment::answer`] serving.
    pub fn schema(&self) -> Option<&Schema> {
        self.inner.workload.schema()
    }

    /// Answers one *ad-hoc* scalar query against the aggregator's current
    /// state: resolves `query` by attribute name, evaluates it through
    /// the structured row-assembly path (the workload matrix is never
    /// materialized), and attaches the exact worst-case error bar at the
    /// observed report count. Convenience for
    /// `self.estimate(aggregator).answer(query)` — serving tiers that
    /// answer many queries per estimate should hold the [`Estimate`] and
    /// call [`Estimate::answer`] directly.
    ///
    /// # Errors
    /// [`LdpError::InvalidQuery`] if the deployment has no schema, the
    /// query does not resolve against it, or the query is not scalar
    /// (marginals belong in the deployed workload).
    ///
    /// # Panics
    /// Panics if the aggregator belongs to a different deployment (as
    /// [`Deployment::estimate`]).
    pub fn answer(&self, aggregator: &Aggregator, query: &Query) -> Result<QueryAnswer, LdpError> {
        self.estimate(aggregator).answer(query)
    }

    /// The workload's Gram operator `G = WᵀW` — structured (implicit)
    /// whenever the workload provides a closed form; call
    /// [`Gram::to_dense`] only as an explicit opt-in.
    pub fn gram(&self) -> &Gram {
        &self.inner.gram
    }

    /// The deployed mechanism.
    pub fn mechanism(&self) -> &(dyn Deployable + Send + Sync) {
        &*self.inner.mechanism
    }

    /// The privacy budget ε every report satisfies.
    pub fn epsilon(&self) -> f64 {
        self.inner.mechanism.epsilon()
    }

    /// Per-user-type variance contributions `T_u` (Theorem 3.4).
    pub fn variance_profile(&self) -> &[f64] {
        &self.inner.profile
    }

    /// Users needed to reach normalized variance `alpha` on this
    /// workload (Corollary 5.4) — known *before* collecting anything.
    pub fn sample_complexity(&self, alpha: f64) -> f64 {
        ldp_core::complexity::sample_complexity(
            &self.inner.profile,
            self.inner.workload.num_queries(),
            alpha,
        )
    }

    /// Worst-case total workload variance after `n_users` reports
    /// (Corollary 3.5).
    pub fn worst_case_variance(&self, n_users: f64) -> f64 {
        variance::worst_case_variance(&self.inner.profile, n_users)
    }
}

/// Resumable streaming ingestion over a [`Deployment`]: the server-side
/// loop of a long-running collection service. Reports arrive in batches;
/// [`StreamIngestor::checkpoint`] serializes the exact aggregation state
/// (integer counts — no float drift) at any batch boundary, and
/// [`Deployment::resume`] picks the stream back up after a restart.
///
/// **Determinism contract:** interrupt at any batch boundary, resume
/// from the checkpoint, ingest the remaining batches — every estimate is
/// byte-equal to the uninterrupted run, at any `LDP_THREADS` setting.
///
/// ```
/// use ldp::prelude::*;
///
/// let deployment = Pipeline::for_workload(Histogram::new(4))
///     .epsilon(1.0)
///     .baseline(Baseline::RandomizedResponse)
///     .unwrap();
///
/// let mut stream = deployment.stream();
/// stream.ingest_batch(&[0, 1, 2, 3]).unwrap();
/// let snapshot = stream.checkpoint(); // persist these bytes anywhere
///
/// // …process restarts…
/// let mut resumed = deployment.resume(&snapshot).unwrap();
/// resumed.ingest_batch(&[2, 2]).unwrap();
/// assert_eq!(resumed.reports(), 6);
/// assert_eq!(resumed.epoch(), 1);
/// ```
pub struct StreamIngestor {
    deployment: Deployment,
    aggregator: Aggregator,
    epoch: u64,
    batches: u64,
}

impl std::fmt::Debug for StreamIngestor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamIngestor")
            .field("epoch", &self.epoch)
            .field("batches", &self.batches)
            .field("reports", &self.aggregator.reports())
            .finish_non_exhaustive()
    }
}

impl StreamIngestor {
    /// Ingests one batch of reports atomically (the batch validates
    /// before any of it counts, exactly like
    /// [`Aggregator::ingest_batch`]).
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] naming the first invalid report;
    /// the stream is unchanged and the batch is not counted — it can be
    /// repaired and re-submitted.
    pub fn ingest_batch(&mut self, reports: &[usize]) -> Result<(), LdpError> {
        self.aggregator.ingest_batch(reports)?;
        self.batches += 1;
        Ok(())
    }

    /// Serializes the exact current state into checkpoint bytes and
    /// advances the epoch. Non-destructive: ingestion continues
    /// afterwards. The bytes carry a fingerprint binding them to this
    /// deployment, a format version, and a checksum — see `ldp-store`'s
    /// codec docs.
    pub fn checkpoint(&mut self) -> Vec<u8> {
        self.epoch += 1;
        encode_checkpoint(&IngestCheckpoint {
            epoch: self.epoch,
            batches: self.batches,
            counts: self.aggregator.counts().to_vec(),
            binding: self.deployment.binding(),
        })
    }

    /// Drains a side shard (one per connection or per thread in a
    /// serving tier) into the stream and resets it in place, counting the
    /// batches it accumulated toward the stream's lineage. Exact integer
    /// addition: absorbing N shards in any order is bit-identical to one
    /// stream having ingested every batch itself — the merge half of the
    /// ldp-serve daemon's "N connections byte-equal to one" contract.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] if the shard disagrees on the
    /// number of outputs; the stream and the shard are both unchanged.
    pub fn absorb(&mut self, shard: &mut AggregatorShard, batches: u64) -> Result<(), LdpError> {
        self.aggregator.merge_from(shard)?;
        self.batches += batches;
        Ok(())
    }

    /// The current estimate — readable mid-stream, collection continues.
    pub fn estimate(&self) -> Estimate {
        self.deployment.estimate(&self.aggregator)
    }

    /// Answers one ad-hoc scalar query against the live stream's current
    /// state — the serving path for long-running collection services
    /// (dashboards, APIs) that field questions while reports keep
    /// arriving.
    ///
    /// # Errors
    /// As [`Estimate::answer`].
    pub fn answer(&self, query: &Query) -> Result<QueryAnswer, LdpError> {
        self.estimate().answer(query)
    }

    /// The deployment this stream collects for.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The underlying aggregator (e.g. for merging side shards).
    pub fn aggregator(&self) -> &Aggregator {
        &self.aggregator
    }

    /// Checkpoint generation: how many checkpoints this lineage has
    /// written (survives resume).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Batches ingested across the stream's whole lineage.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Reports collected across the stream's whole lineage.
    pub fn reports(&self) -> u64 {
        self.aggregator.reports()
    }
}

/// One ad-hoc query answer with its analytic error bar: the estimated
/// count, its exact worst-case variance at the observed report count
/// (Theorem 3.4 specialized to a single query row), and the standard
/// deviation — the "±so-many users" an application displays next to the
/// number.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryAnswer {
    /// The estimated answer `w·x̂`.
    pub value: f64,
    /// Worst-case variance of the answer over user-type distributions at
    /// the estimate's report count.
    pub variance: f64,
    /// `variance.sqrt()` — the error bar in user-count units.
    pub stddev: f64,
}

/// The terminal product of a pipeline: the unbiased data-vector estimate
/// `x̂` together with everything an analyst reads off it — workload
/// answers `Wx̂`, ad-hoc query answers, analytic variance and sample
/// complexity at the observed report count, and WNNLS consistency
/// refinement.
#[derive(Clone)]
pub struct Estimate {
    inner: Arc<DeploymentInner>,
    xhat: Vec<f64>,
    reports: u64,
}

impl fmt::Debug for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Estimate")
            .field("n", &self.xhat.len())
            .field("reports", &self.reports)
            .finish_non_exhaustive()
    }
}

impl Estimate {
    /// The estimated data vector `x̂` (length `n`).
    pub fn data_vector(&self) -> &[f64] {
        &self.xhat
    }

    /// Consumes the estimate, returning `x̂`.
    pub fn into_data_vector(self) -> Vec<f64> {
        self.xhat
    }

    /// The workload answers `Wx̂` (length `p`), evaluated implicitly —
    /// workloads with millions of queries never materialize `W`.
    pub fn answers(&self) -> Vec<f64> {
        self.inner.workload.evaluate(&self.xhat)
    }

    /// [`Estimate::answers`] into a caller-owned buffer (cleared and
    /// resized to `num_queries()`), so repeated answer extraction — a
    /// dashboard refreshing against a live stream, a bench loop — is
    /// allocation-free after the first call.
    pub fn answers_into(&self, out: &mut Vec<f64>) {
        // No clear(): evaluate_into overwrites every slot, so repeated
        // extraction skips the redundant zeroing pass too.
        out.resize(self.inner.workload.num_queries(), 0.0);
        self.inner.workload.evaluate_into(&self.xhat, out);
    }

    /// Answers one *ad-hoc* scalar query — a range, predicate, equality,
    /// or total over the deployment's schema, resolved by attribute name
    /// at call time. The value is computed through the same structured
    /// row-assembly `dot` the workload matrix path uses, so it is
    /// **bit-identical** to `workload.matrix().matvec(x̂)` at the query's
    /// row — without ever materializing the matrix. The error bar is the
    /// exact worst-case variance of this one query at the observed report
    /// count (Theorem 3.4 with `G = wwᵀ`).
    ///
    /// # Errors
    /// [`LdpError::InvalidQuery`] if the deployment carries no schema
    /// (build it with [`Pipeline::for_schema`]), the query fails to
    /// resolve (unknown attribute, out-of-range value, empty selection),
    /// the query is not scalar, or the mechanism exposes no strategy for
    /// the variance analysis.
    pub fn answer(&self, query: &Query) -> Result<QueryAnswer, LdpError> {
        let schema = self.inner.workload.schema().ok_or_else(|| {
            LdpError::InvalidQuery(
                "deployment workload carries no schema; declare it with \
                 Pipeline::for_schema to serve ad-hoc queries"
                    .into(),
            )
        })?;
        let resolved = query
            .resolve(schema)
            .map_err(|e| LdpError::InvalidQuery(e.to_string()))?;
        if !resolved.is_scalar() {
            return Err(LdpError::InvalidQuery(format!(
                "query '{}' produces {} values; ad-hoc serving answers scalar \
                 queries — deploy marginals in the workload and read \
                 Estimate::answers",
                resolved.label(),
                resolved.rows()
            )));
        }
        let n = self.inner.workload.domain_size();
        let mut w = vec![0.0; n];
        resolved.fill_row(0, &mut w);
        let value = dot(&w, &self.xhat);

        // Per-user-type variance of the single query `w` (Theorem 3.4
        // with the 1 × m reduced workload V = (Kᵀw)ᵀ): exactly the
        // `ldp-core` variance machinery, so ad-hoc error bars can never
        // drift from the deployed-workload analysis.
        let mechanism = &self.inner.mechanism;
        let strategy = mechanism.strategy().ok_or_else(|| {
            LdpError::InvalidQuery(
                "mechanism exposes no strategy matrix; per-query variance \
                 is unavailable"
                    .into(),
            )
        })?;
        let v = mechanism.reconstruction_matrix().t_matvec(&w);
        let v_row = Matrix::from_vec(1, v.len(), v);
        let profile = variance::variance_profile_explicit(&v_row, strategy.matrix());
        let variance = variance::worst_case_variance(&profile, self.reports as f64);
        Ok(QueryAnswer {
            value,
            variance,
            stddev: variance.sqrt(),
        })
    }

    /// Number of reports this estimate is based on.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Worst-case total workload variance at this report count
    /// (Corollary 3.5) — the analytic error bar, no simulation needed.
    pub fn worst_case_variance(&self) -> f64 {
        variance::worst_case_variance(&self.inner.profile, self.reports as f64)
    }

    /// Worst-case per-query standard deviation at this report count: the
    /// interpretable "±so-many users" error bar on each answer.
    pub fn per_query_stddev(&self) -> f64 {
        (self.worst_case_variance() / self.inner.workload.num_queries() as f64).sqrt()
    }

    /// Users needed for normalized variance `alpha` (Corollary 5.4) —
    /// compare with [`Estimate::reports`] to see how far along the
    /// collection is.
    pub fn sample_complexity(&self, alpha: f64) -> f64 {
        ldp_core::complexity::sample_complexity(
            &self.inner.profile,
            self.inner.workload.num_queries(),
            alpha,
        )
    }

    /// WNNLS consistency refinement (Appendix A): the closest non-negative
    /// data vector in workload distance. Answers derived from the result
    /// come from an actual population, and in the high-privacy regime
    /// typically have substantially lower error (Figure 4).
    pub fn consistent(&self) -> Estimate {
        self.consistent_with(&WnnlsOptions::default())
    }

    /// [`Estimate::consistent`] with explicit solver options.
    pub fn consistent_with(&self, options: &WnnlsOptions) -> Estimate {
        Estimate {
            inner: Arc::clone(&self.inner),
            xhat: wnnls(&self.inner.gram, &self.xhat, options),
            reports: self.reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::LdpMechanism;
    use ldp_linalg::Matrix;
    use ldp_workloads::{Histogram, Prefix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn baseline_deployment_round_trip() {
        let n = 8;
        let deployment = Pipeline::for_workload(Histogram::new(n))
            .epsilon(2.0)
            .baseline(Baseline::RandomizedResponse)
            .unwrap();
        assert!((deployment.epsilon() - 2.0).abs() < 1e-12);

        let client = deployment.client();
        let mut agg = deployment.aggregator();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            agg.ingest(client.respond(3, &mut rng)).unwrap();
        }
        let estimate = deployment.estimate(&agg);
        assert_eq!(estimate.reports(), 500);
        // Unbiased estimate should put most mass on type 3 at eps=2.
        let xhat = estimate.data_vector();
        let argmax = (0..n)
            .max_by(|&a, &b| xhat[a].partial_cmp(&xhat[b]).unwrap())
            .unwrap();
        assert_eq!(argmax, 3);
        // Consistent refinement is non-negative and answers have length p.
        let consistent = estimate.consistent();
        assert!(consistent.data_vector().iter().all(|&v| v >= 0.0));
        assert_eq!(consistent.answers().len(), n);
        assert!(estimate.worst_case_variance().is_finite());
        assert!(estimate.per_query_stddev() > 0.0);
        assert!(estimate.sample_complexity(0.01).is_finite());
    }

    #[test]
    fn sharded_merge_matches_sequential_bit_for_bit() {
        let deployment = Pipeline::for_workload(Prefix::new(8))
            .epsilon(1.0)
            .baseline(Baseline::HadamardResponse)
            .unwrap();
        let client = deployment.client();
        let mut rng = StdRng::seed_from_u64(5);
        let reports: Vec<usize> = (0..2000).map(|i| client.respond(i % 8, &mut rng)).collect();

        let mut sequential = deployment.aggregator();
        sequential.ingest_batch(&reports).unwrap();

        let mut shards = deployment.shards(7);
        for (i, &r) in reports.iter().enumerate() {
            shards[i % 7].ingest(r).unwrap();
        }
        let merged = deployment.merge(shards).unwrap();

        assert_eq!(merged.counts(), sequential.counts());
        assert_eq!(
            deployment.estimate(&merged).data_vector(),
            deployment.estimate(&sequential).data_vector()
        );
    }

    #[test]
    fn deploy_accepts_external_mechanism_and_validates_domain() {
        let gram = Histogram::new(6).gram();
        let mech = ldp_mechanisms::randomized_response(6, 1.0, &gram).unwrap();
        let deployment = Pipeline::for_workload(Histogram::new(6))
            .deploy(mech)
            .unwrap();
        assert_eq!(deployment.mechanism().domain_size(), 6);

        let mismatched = ldp_mechanisms::randomized_response(5, 1.0, &Matrix::identity(5)).unwrap();
        let err = Pipeline::for_workload(Histogram::new(6)).deploy(mismatched);
        assert!(matches!(err, Err(LdpError::DimensionMismatch { .. })));
    }

    #[test]
    fn every_terminal_rejects_bad_epsilon_uniformly() {
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let opt = Pipeline::for_workload(Histogram::new(4))
                .epsilon(eps)
                .optimized(&OptimizerConfig::quick(1));
            assert!(
                matches!(opt, Err(LdpError::InvalidEpsilon(_))),
                "optimized at eps {eps}"
            );
            let base = Pipeline::for_workload(Histogram::new(4))
                .epsilon(eps)
                .baseline(Baseline::RandomizedResponse);
            assert!(
                matches!(base, Err(LdpError::InvalidEpsilon(_))),
                "baseline at eps {eps}"
            );
            let e = 1.0_f64.exp();
            let z = e + 3.0;
            let q = Matrix::from_fn(4, 4, |o, u| if o == u { e / z } else { 1.0 / z });
            let strat = Pipeline::for_workload(Histogram::new(4))
                .epsilon(eps)
                .strategy(StrategyMatrix::new(q).unwrap());
            assert!(
                matches!(strat, Err(LdpError::InvalidEpsilon(_))),
                "strategy at eps {eps}"
            );
        }
    }

    #[test]
    fn stream_checkpoint_resume_round_trip() {
        let deployment = Pipeline::for_workload(Prefix::new(8))
            .epsilon(1.0)
            .baseline(Baseline::RandomizedResponse)
            .unwrap();
        let mut stream = deployment.stream();
        stream.ingest_batch(&[0, 1, 2, 3]).unwrap();
        stream.ingest_batch(&[4, 5]).unwrap();
        let bytes = stream.checkpoint();
        assert_eq!(stream.epoch(), 1);

        let mut resumed = deployment.resume(&bytes).unwrap();
        assert_eq!(resumed.epoch(), 1);
        assert_eq!(resumed.batches(), 2);
        assert_eq!(resumed.reports(), 6);
        resumed.ingest_batch(&[6, 7]).unwrap();

        let mut uninterrupted = deployment.stream();
        for batch in [&[0usize, 1, 2, 3][..], &[4, 5], &[6, 7]] {
            uninterrupted.ingest_batch(batch).unwrap();
        }
        assert_eq!(
            resumed.aggregator().counts(),
            uninterrupted.aggregator().counts()
        );
        assert_eq!(
            resumed.estimate().data_vector(),
            uninterrupted.estimate().data_vector()
        );
    }

    #[test]
    fn resume_rejects_foreign_deployment_checkpoint() {
        let a = Pipeline::for_workload(Prefix::new(8))
            .epsilon(1.0)
            .baseline(Baseline::RandomizedResponse)
            .unwrap();
        let b = Pipeline::for_workload(Prefix::new(8))
            .epsilon(2.0) // different budget → different binding
            .baseline(Baseline::RandomizedResponse)
            .unwrap();
        let mut stream = a.stream();
        stream.ingest_batch(&[0, 1]).unwrap();
        let bytes = stream.checkpoint();
        assert!(a.resume(&bytes).is_ok());
        assert!(matches!(
            b.resume(&bytes).unwrap_err(),
            ldp_store::StoreError::BindingMismatch { .. }
        ));
        // Corrupted bytes are a codec error, not a panic.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        assert!(a.resume(&corrupt).is_err());
    }

    #[test]
    fn schema_pipeline_deploys_and_answers_ad_hoc() {
        let deployment = Pipeline::for_schema(Schema::new([("age", 4), ("sex", 2)]))
            .queries([Query::marginal(["age"]), Query::total()])
            .epsilon(2.0)
            .baseline(Baseline::RandomizedResponse)
            .unwrap();
        assert_eq!(deployment.workload().num_queries(), 5);
        let schema = deployment.schema().expect("schema-first deployment");
        assert_eq!(schema.domain_size(), 8);

        // Collect a little data and serve ad-hoc questions off it.
        let client = deployment.client();
        let mut agg = deployment.aggregator();
        let mut rng = StdRng::seed_from_u64(9);
        let adult = schema.user_type(&[("age", 3), ("sex", 1)]).unwrap();
        for _ in 0..400 {
            agg.ingest(client.respond(adult, &mut rng)).unwrap();
        }
        let estimate = deployment.estimate(&agg);
        let total = estimate.answer(&Query::total()).unwrap();
        assert!(total.variance >= 0.0 && total.stddev == total.variance.sqrt());
        let cell = estimate
            .answer(&Query::equals("age", 3).and_equals("sex", 1))
            .unwrap();
        // Most of the mass should land on the true cell at ε = 2.
        assert!(cell.value > 100.0, "cell {}", cell.value);
        // Deployment::answer is the same computation.
        let via_deployment = deployment.answer(&agg, &Query::total()).unwrap();
        assert_eq!(via_deployment, total);

        // answers_into matches answers, allocation-free on reuse.
        let mut buf = Vec::new();
        estimate.answers_into(&mut buf);
        assert_eq!(buf, estimate.answers());
        estimate.answers_into(&mut buf);
        assert_eq!(buf, estimate.answers());
    }

    #[test]
    fn answer_value_is_bit_identical_to_matrix_evaluate() {
        let deployment = Pipeline::for_schema(Schema::new([("a", 3), ("b", 2), ("c", 2)]))
            .queries([
                Query::range("a", 1..3),
                Query::equals("b", 0).and_values("c", [1]),
                Query::total(),
            ])
            .epsilon(1.0)
            .baseline(Baseline::HadamardResponse)
            .unwrap();
        let client = deployment.client();
        let mut agg = deployment.aggregator();
        let mut rng = StdRng::seed_from_u64(4);
        for u in 0..12 {
            for _ in 0..40 {
                agg.ingest(client.respond(u, &mut rng)).unwrap();
            }
        }
        let estimate = deployment.estimate(&agg);
        let reference = deployment
            .workload()
            .matrix()
            .matvec(estimate.data_vector());
        let queries = [
            Query::range("a", 1..3),
            Query::equals("b", 0).and_values("c", [1]),
            Query::total(),
        ];
        for (i, q) in queries.iter().enumerate() {
            let got = estimate.answer(q).unwrap().value;
            assert_eq!(got.to_bits(), reference[i].to_bits(), "query {i}");
        }
    }

    #[test]
    fn answer_fails_closed_on_bad_queries_and_flat_deployments() {
        let deployment = Pipeline::for_schema(Schema::new([("age", 4), ("sex", 2)]))
            .queries([Query::total()])
            .epsilon(1.0)
            .baseline(Baseline::RandomizedResponse)
            .unwrap();
        let estimate = deployment.estimate(&deployment.aggregator());
        for bad in [
            Query::range("zip", 0..1), // unknown attribute
            Query::range("age", 2..9), // out of range
            Query::range("age", 2..2), // empty selection
            Query::marginal(["age"]),  // not scalar
        ] {
            assert!(
                matches!(estimate.answer(&bad), Err(LdpError::InvalidQuery(_))),
                "{bad:?} should be rejected"
            );
        }
        // Flat deployments have no schema to resolve against.
        let flat = Pipeline::for_workload(Histogram::new(8))
            .epsilon(1.0)
            .baseline(Baseline::RandomizedResponse)
            .unwrap();
        assert!(flat.schema().is_none());
        let err = flat
            .estimate(&flat.aggregator())
            .answer(&Query::total())
            .unwrap_err();
        assert!(matches!(err, LdpError::InvalidQuery(_)));
    }

    #[test]
    fn stream_answers_live_queries() {
        let deployment = Pipeline::for_schema(Schema::new([("kind", 4)]))
            .queries([Query::marginal(["kind"])])
            .epsilon(1.0)
            .baseline(Baseline::RandomizedResponse)
            .unwrap();
        let mut stream = deployment.stream();
        stream.ingest_batch(&[0, 1, 2, 3, 3]).unwrap();
        let a = stream.answer(&Query::total()).unwrap();
        let b = stream.estimate().answer(&Query::total()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn baseline_parses_from_strings() {
        for (name, expect) in [
            ("rr", Baseline::RandomizedResponse),
            ("Randomized-Response", Baseline::RandomizedResponse),
            ("randomized_response", Baseline::RandomizedResponse),
            ("hadamard", Baseline::HadamardResponse),
            ("HR", Baseline::HadamardResponse),
            ("hierarchical", Baseline::Hierarchical),
            ("Tree", Baseline::Hierarchical),
        ] {
            assert_eq!(name.parse::<Baseline>().unwrap(), expect, "{name}");
            // Display round-trips through FromStr.
            assert_eq!(expect.to_string().parse::<Baseline>().unwrap(), expect);
        }
        assert!(matches!(
            "laplace".parse::<Baseline>(),
            Err(LdpError::UnknownBaseline(_))
        ));
    }

    #[test]
    fn simulate_matches_run_for_same_seed() {
        let deployment = Pipeline::for_workload(Prefix::new(8))
            .epsilon(1.0)
            .baseline(Baseline::RandomizedResponse)
            .unwrap();
        let gram = Prefix::new(8).gram();
        let manual = ldp_mechanisms::randomized_response(8, 1.0, &gram).unwrap();
        let data = DataVector::from_counts(vec![40.0, 10.0, 0.0, 5.0, 5.0, 20.0, 0.0, 20.0]);
        let a = deployment.simulate(&data, &mut StdRng::seed_from_u64(11));
        let b = manual.run(&data, &mut StdRng::seed_from_u64(11));
        assert_eq!(a.data_vector(), b.as_slice());
        assert_eq!(a.reports(), 100);
    }
}
