//! The top-level deployment pipeline: one fluent path from *workload* to
//! *consistent estimates*, replacing the hand-threaded five-crate flow
//! (`gram()` → `OptimizerConfig` → `FactorizationMechanism` → `Client`/
//! `Aggregator` → `evaluate()`/`wnnls`).
//!
//! ```text
//! Pipeline::for_workload(w).epsilon(ε).optimized(&cfg)   // or .baseline(..) / .strategy(..)
//!         └─> Deployment ──clients()──> many threads/devices
//!                       ──shards()───> concurrent ingestion ──merge()──> Aggregator
//!                       ──estimate()─> Estimate { x̂, Wx̂, variance, complexity }
//!                                            └─.consistent()─> WNNLS-refined Estimate
//! ```
//!
//! A [`Deployment`] is cheap to clone (an `Arc`) and `Send + Sync`; the
//! [`Client`]s it hands out share the mechanism's precomputed alias
//! tables, and [`AggregatorShard`]s ingest `u64` counts concurrently and
//! merge exactly — any shard topology produces bit-identical results to
//! sequential collection. [`Deployment::aggregate`] packages that as a
//! one-call parallel batch ingest over the `ldp-parallel` pool
//! (`LDP_THREADS` workers, one private shard each, exact merge).
//!
//! ## Scaling to large domains
//!
//! The pipeline never densifies a structured workload: it holds the
//! workload's [`Gram`] *operator* (`G = WᵀW`), and every analytic
//! read-out — variance profiles, sample complexity, WNNLS consistency —
//! consumes it through matrix-vector products. Prefix/range Grams are
//! `O(n)` structures with `O(n)` products, marginal/parity Grams are
//! Walsh–Hadamard kernels (`O(n log n)`), and `Product` workloads carry
//! a genuine Kronecker operator, so multi-dimensional domains never pay
//! an `n₁n₂ × n₁n₂` blow-up. Only [`Pipeline::optimized`] materializes
//! the Gram — once, into the optimizer's reusable workspace, because
//! Algorithm 2's inner solves are `O(n³)` dense regardless (at n = 4096
//! that buffer is 128 MiB; the answer paths stay implicit). The explicit
//! `p × n` workload matrix (`Workload::matrix()`) is an opt-in escape
//! hatch that nothing in the pipeline calls — All Range at n = 1024
//! would be 524 800 × 1024.
//!
//! ```
//! use ldp::prelude::*;
//! use rand::SeedableRng;
//!
//! let deployment = Pipeline::for_workload(Prefix::new(16))
//!     .epsilon(1.0)
//!     .baseline(Baseline::RandomizedResponse)
//!     .unwrap();
//!
//! // Clients randomize on-device; shards aggregate wherever reports land.
//! let client = deployment.client();
//! let mut shard = deployment.shard();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! for user_type in [3usize, 3, 9, 12, 1, 3] {
//!     shard.ingest(client.respond(user_type, &mut rng)).unwrap();
//! }
//!
//! let aggregator = deployment.merge([shard]).unwrap();
//! let estimate = deployment.estimate(&aggregator);
//! assert_eq!(estimate.reports(), 6);
//! assert_eq!(estimate.answers().len(), 16);
//! let consistent = estimate.consistent();
//! assert!(consistent.data_vector().iter().all(|&v| v >= 0.0));
//! ```

use std::sync::Arc;

use ldp_core::protocol::{Aggregator, AggregatorShard, Client};
use ldp_core::{
    variance, DataVector, Deployable, FactorizationMechanism, LdpError, StrategyMatrix,
};
use ldp_estimation::{wnnls, WnnlsOptions};
use ldp_linalg::stablehash::Fnv64;
use ldp_linalg::Gram;
use ldp_mechanisms::{hadamard_response, hierarchical, randomized_response};
use ldp_opt::{optimized_mechanism, OptimizerConfig};
use ldp_store::snapshot::{decode_checkpoint, encode_checkpoint, IngestCheckpoint};
use ldp_store::{CacheOutcome, StoreError, StrategyRegistry};
use ldp_workloads::Workload;
use rand::RngCore;

/// Closed-form mechanisms a pipeline can deploy without running the
/// optimizer. Each is built as a [`FactorizationMechanism`]
/// (ldp-core) over its Table-1 strategy matrix, with the
/// workload-optimal reconstruction of Theorem 3.10.
///
/// [`FactorizationMechanism`]: ldp_core::FactorizationMechanism
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Baseline {
    /// Warner's randomized response (`m = n`).
    RandomizedResponse,
    /// Hadamard response (Acharya et al.), `m = 2^⌈log₂(n+1)⌉`.
    HadamardResponse,
    /// Hierarchical / tree-based mechanism (Cormode et al.).
    Hierarchical,
}

/// Builder for a [`Deployment`]: declare the workload, set the privacy
/// budget, then pick the mechanism.
///
/// Entry point: [`Pipeline::for_workload`]. Terminal methods:
/// [`Pipeline::optimized`], [`Pipeline::baseline`], [`Pipeline::strategy`],
/// [`Pipeline::deploy`].
pub struct Pipeline {
    workload: Arc<dyn Workload + Send + Sync>,
    epsilon: f64,
}

impl Pipeline {
    /// Starts a pipeline for a workload. The privacy budget defaults to
    /// `ε = 1.0`; set it explicitly with [`Pipeline::epsilon`].
    pub fn for_workload(workload: impl Workload + Send + Sync + 'static) -> Self {
        Self::for_shared_workload(Arc::new(workload))
    }

    /// Like [`Pipeline::for_workload`] for an already-shared workload
    /// trait object.
    pub fn for_shared_workload(workload: Arc<dyn Workload + Send + Sync>) -> Self {
        Self {
            workload,
            epsilon: 1.0,
        }
    }

    /// Sets the ε-LDP privacy budget every client's report satisfies.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Validates the builder's budget before any terminal does real work
    /// — every terminal rejects a non-finite or non-positive ε the same
    /// way, without first materializing a Gram or running an optimizer.
    fn validated_epsilon(&self) -> Result<f64, LdpError> {
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(LdpError::InvalidEpsilon(self.epsilon));
        }
        Ok(self.epsilon)
    }

    /// Optimizes a strategy for exactly this workload (Algorithm 2) and
    /// deploys the resulting factorization mechanism.
    ///
    /// # Errors
    /// Propagates optimizer and mechanism-construction failures
    /// ([`LdpError::InvalidEpsilon`], [`LdpError::OptimizationFailed`], …).
    pub fn optimized(self, config: &OptimizerConfig) -> Result<Deployment, LdpError> {
        let epsilon = self.validated_epsilon()?;
        let gram = self.workload.gram();
        let mechanism = optimized_mechanism(&gram, epsilon, config)?;
        Deployment::assemble(self.workload, gram, Arc::new(mechanism))
    }

    /// Like [`Pipeline::optimized`], but backed by a persistent
    /// [`StrategyRegistry`]: if a strategy for exactly this
    /// `(workload, ε, config)` was optimized before — in this process or
    /// any earlier one — PGD is **skipped entirely** and the deployment
    /// warm-starts from disk with a bit-identical strategy matrix. On a
    /// miss the optimizer runs once and the result is persisted.
    ///
    /// Returns the deployment together with the [`CacheOutcome`] so
    /// callers (and perf dashboards) can distinguish warm from cold.
    ///
    /// # Errors
    /// Optimizer and mechanism failures wrapped as
    /// [`StoreError::Mechanism`], plus registry I/O or decode failures.
    pub fn optimized_cached(
        self,
        config: &OptimizerConfig,
        registry: &StrategyRegistry,
    ) -> Result<(Deployment, CacheOutcome), StoreError> {
        let epsilon = self.validated_epsilon()?;
        // One Gram construction serves keying, optimization, and
        // assembly — Gram assembly is real work for dense/marginal
        // workloads, so it must not be repeated per stage.
        let gram = self.workload.gram();
        let key = ldp_store::Fingerprint::with_gram(&*self.workload, &gram, epsilon, config);
        let (strategy, outcome) = registry.get_or_optimize_keyed(key, &gram, epsilon, config)?;
        // Identical to the tail of `optimized_mechanism`: the privacy
        // budget is trusted (the optimizer projected onto the ε-LDP
        // simplex; the decode path revalidated stochasticity), and the
        // reconstruction recompute is deterministic — bit-equal Q gives
        // bit-equal K, so warm and cold deployments are interchangeable.
        let mechanism = FactorizationMechanism::new_unchecked_privacy(strategy, &gram, epsilon)?
            .with_name("Optimized");
        let deployment = Deployment::assemble(self.workload, gram, Arc::new(mechanism))?;
        Ok((deployment, outcome))
    }

    /// Deploys a closed-form baseline mechanism at this workload/budget.
    ///
    /// # Errors
    /// [`LdpError::WorkloadNotSupported`] if the baseline cannot answer
    /// the workload, [`LdpError::InvalidEpsilon`] for a bad budget.
    pub fn baseline(self, baseline: Baseline) -> Result<Deployment, LdpError> {
        let epsilon = self.validated_epsilon()?;
        let n = self.workload.domain_size();
        let gram = self.workload.gram();
        let mechanism = match baseline {
            Baseline::RandomizedResponse => randomized_response(n, epsilon, &gram)?,
            Baseline::HadamardResponse => hadamard_response(n, epsilon, &gram)?,
            Baseline::Hierarchical => hierarchical(n, epsilon, &gram)?,
        };
        Deployment::assemble(self.workload, gram, Arc::new(mechanism))
    }

    /// Deploys a hand-built strategy matrix, validating ε-LDP and that
    /// the workload is answerable (Theorem 3.10's row-space condition).
    ///
    /// # Errors
    /// [`LdpError::InvalidEpsilon`], [`LdpError::PrivacyViolation`],
    /// [`LdpError::WorkloadNotSupported`], or
    /// [`LdpError::DimensionMismatch`] from mechanism construction.
    pub fn strategy(self, strategy: StrategyMatrix) -> Result<Deployment, LdpError> {
        let epsilon = self.validated_epsilon()?;
        let gram = self.workload.gram();
        let mechanism = FactorizationMechanism::new(strategy, &gram, epsilon)?;
        Deployment::assemble(self.workload, gram, Arc::new(mechanism))
    }

    /// Deploys an existing [`Deployable`] mechanism — the escape hatch
    /// that lets *any* mechanism enter the pipeline. The mechanism's own
    /// privacy budget governs; the builder's [`Pipeline::epsilon`] is
    /// ignored here.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] if the mechanism's domain size
    /// disagrees with the workload's.
    pub fn deploy(
        self,
        mechanism: impl Deployable + Send + Sync + 'static,
    ) -> Result<Deployment, LdpError> {
        let gram = self.workload.gram();
        Deployment::assemble(self.workload, gram, Arc::new(mechanism))
    }
}

struct DeploymentInner {
    workload: Arc<dyn Workload + Send + Sync>,
    /// The workload's Gram *operator* — structured workloads (prefix,
    /// range, Kronecker products, marginals) stay implicit end-to-end;
    /// nothing in the deployment ever materializes an `n × n` matrix.
    gram: Gram,
    mechanism: Arc<dyn Deployable + Send + Sync>,
    /// Per-user-type variance contributions `T_u` (Theorem 3.4), cached
    /// because every analytic read-out derives from them.
    profile: Vec<f64>,
    /// Stable fingerprint of the deployed mechanism (dimensions, budget,
    /// reconstruction bits): stamped into every streaming checkpoint so
    /// a snapshot can never be resumed into a different deployment.
    /// Hashing `K` is `O(nm)` serial work, so it is computed lazily on
    /// the first `checkpoint()`/`resume()` — deployments that never
    /// stream never pay for it.
    binding: std::sync::OnceLock<u64>,
}

/// A deployed mechanism bound to its workload: hands out [`Client`]s and
/// [`AggregatorShard`]s, merges shards, and turns aggregators into
/// [`Estimate`]s. Cloning is O(1) (`Arc`), and the deployment is
/// `Send + Sync`, so one instance can serve every thread of a collection
/// fleet.
#[derive(Clone)]
pub struct Deployment {
    inner: Arc<DeploymentInner>,
}

impl Deployment {
    fn assemble(
        workload: Arc<dyn Workload + Send + Sync>,
        gram: Gram,
        mechanism: Arc<dyn Deployable + Send + Sync>,
    ) -> Result<Self, LdpError> {
        if mechanism.domain_size() != workload.domain_size() {
            return Err(LdpError::DimensionMismatch {
                context: "deployment domain",
                expected: workload.domain_size(),
                actual: mechanism.domain_size(),
            });
        }
        let profile = mechanism.variance_profile(&gram);
        Ok(Self {
            inner: Arc::new(DeploymentInner {
                workload,
                gram,
                mechanism,
                profile,
                binding: std::sync::OnceLock::new(),
            }),
        })
    }

    /// The checkpoint-binding fingerprint, computed on first use (it
    /// hashes every bit of the reconstruction matrix).
    fn binding(&self) -> u64 {
        *self.inner.binding.get_or_init(|| {
            let mechanism = &self.inner.mechanism;
            let mut h = Fnv64::new();
            h.write_str("ldp-deployment-binding/1");
            h.write_u64(self.inner.workload.domain_size() as u64);
            h.write_u64(mechanism.num_outputs() as u64);
            h.write_f64(mechanism.epsilon());
            for &v in mechanism.reconstruction_matrix().as_slice() {
                h.write_f64(v);
            }
            h.finish()
        })
    }

    /// A client sharing the mechanism's precomputed alias tables; O(1),
    /// hand one to every reporting thread or device.
    pub fn client(&self) -> Client {
        self.inner.mechanism.client()
    }

    /// An empty aggregation shard; create one per ingestion thread.
    pub fn shard(&self) -> AggregatorShard {
        AggregatorShard::new(self.inner.mechanism.num_outputs())
    }

    /// `count` empty shards, ready to move into worker threads.
    pub fn shards(&self, count: usize) -> Vec<AggregatorShard> {
        (0..count).map(|_| self.shard()).collect()
    }

    /// A full (reconstruction-carrying) sequential aggregator.
    pub fn aggregator(&self) -> Aggregator {
        Aggregator::from_reconstruction(self.inner.mechanism.reconstruction_matrix().clone())
    }

    /// Folds any number of shards into one aggregator. Integer counts
    /// make this exact: the result is bit-identical to sequential
    /// ingestion of the same reports in any order.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] if a shard's output count
    /// disagrees with the deployment's.
    pub fn merge(
        &self,
        shards: impl IntoIterator<Item = AggregatorShard>,
    ) -> Result<Aggregator, LdpError> {
        let mut aggregator = self.aggregator();
        for shard in shards {
            aggregator.merge(shard)?;
        }
        Ok(aggregator)
    }

    /// Ingests a whole batch of reports into a fresh [`Aggregator`],
    /// splitting the batch across the [`ldp_parallel`] pool — one
    /// private shard per worker, merged in chunk order at the end.
    /// Counts are integers, so the result is **bit-identical** to
    /// [`Aggregator::ingest_batch`] on one thread, at any thread count
    /// (set `LDP_THREADS` to pin the worker count).
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] naming the first invalid report
    /// (in batch order); like the sequential batch path, nothing is
    /// counted in that case.
    pub fn aggregate(&self, reports: &[usize]) -> Result<Aggregator, LdpError> {
        // Ingesting a report is a couple of nanoseconds of integer work;
        // below this batch size scoped-thread spawns would dominate, so
        // small batches take the sequential path (same result — counts
        // are exact either way).
        const PAR_MIN_REPORTS: usize = 1 << 14;
        let pool = ldp_parallel::pool();
        let workers = if reports.len() >= PAR_MIN_REPORTS {
            pool.threads().min(reports.len()).max(1)
        } else {
            1
        };
        let chunk_len = reports.len().div_ceil(workers).max(1);
        let shards: Vec<Result<AggregatorShard, LdpError>> = pool.par_map(workers, |w| {
            let lo = (w * chunk_len).min(reports.len());
            let hi = ((w + 1) * chunk_len).min(reports.len());
            let mut shard = self.shard();
            shard.ingest_batch(&reports[lo..hi])?;
            Ok(shard)
        });
        // Chunk-order fold: the first bad report in batch order is the
        // first error here, matching the sequential validation.
        let mut aggregator = self.aggregator();
        for shard in shards {
            aggregator.merge(shard?)?;
        }
        Ok(aggregator)
    }

    /// Opens a fresh resumable ingestion stream: batches go in,
    /// [`StreamIngestor::checkpoint`] captures the exact state at any
    /// batch boundary, and [`Deployment::resume`] restores it — after
    /// which the run is bit-for-bit equal to one that was never
    /// interrupted.
    pub fn stream(&self) -> StreamIngestor {
        StreamIngestor {
            deployment: self.clone(),
            aggregator: self.aggregator(),
            epoch: 0,
            batches: 0,
        }
    }

    /// Restores an ingestion stream from checkpoint bytes written by
    /// [`StreamIngestor::checkpoint`]. Counts are exact integers, so
    /// resuming at batch boundary `k` and ingesting batches `k..` yields
    /// estimates **byte-equal** to an uninterrupted run — the streaming
    /// extension of the PR 3 determinism contract (asserted in
    /// `tests/durability.rs`).
    ///
    /// # Errors
    /// Any codec defect ([`StoreError::Truncated`],
    /// [`StoreError::ChecksumMismatch`], …), or
    /// [`StoreError::Malformed`] if the checkpoint was written by a
    /// *different* deployment (binding fingerprint mismatch) or its
    /// counts disagree with this mechanism's output dimension.
    pub fn resume(&self, checkpoint: &[u8]) -> Result<StreamIngestor, StoreError> {
        let cp = decode_checkpoint(checkpoint)?;
        let binding = self.binding();
        if cp.binding != binding {
            return Err(StoreError::Malformed(format!(
                "checkpoint was written by a different deployment \
                 (binding {:#018x}, this deployment is {binding:#018x})",
                cp.binding
            )));
        }
        let shard = AggregatorShard::from_counts(cp.counts);
        let aggregator =
            Aggregator::from_parts(self.inner.mechanism.reconstruction_matrix().clone(), shard)?;
        Ok(StreamIngestor {
            deployment: self.clone(),
            aggregator,
            epoch: cp.epoch,
            batches: cp.batches,
        })
    }

    /// Reads the aggregator's current state into an [`Estimate`].
    /// Non-destructive: collection can continue afterwards.
    ///
    /// # Panics
    /// Panics if the aggregator belongs to a deployment with a different
    /// number of outputs — mixing deployments would silently pair `x̂`
    /// with the wrong workload and variance profile.
    pub fn estimate(&self, aggregator: &Aggregator) -> Estimate {
        assert_eq!(
            aggregator.counts().len(),
            self.inner.mechanism.num_outputs(),
            "aggregator output count must match the deployment's mechanism"
        );
        Estimate {
            inner: Arc::clone(&self.inner),
            xhat: aggregator.estimate(),
            reports: aggregator.reports(),
        }
    }

    /// Simulates the whole population in one call (the paper's
    /// experiment path): every user in `data` reports once.
    ///
    /// # Panics
    /// Panics if `data`'s domain size disagrees with the deployment's.
    pub fn simulate(&self, data: &DataVector, rng: &mut dyn RngCore) -> Estimate {
        let xhat = self.inner.mechanism.run(data, rng);
        Estimate {
            inner: Arc::clone(&self.inner),
            xhat,
            reports: data.rounded().total() as u64,
        }
    }

    /// The workload this deployment answers.
    pub fn workload(&self) -> &(dyn Workload + Send + Sync) {
        &*self.inner.workload
    }

    /// The workload's Gram operator `G = WᵀW` — structured (implicit)
    /// whenever the workload provides a closed form; call
    /// [`Gram::to_dense`] only as an explicit opt-in.
    pub fn gram(&self) -> &Gram {
        &self.inner.gram
    }

    /// The deployed mechanism.
    pub fn mechanism(&self) -> &(dyn Deployable + Send + Sync) {
        &*self.inner.mechanism
    }

    /// The privacy budget ε every report satisfies.
    pub fn epsilon(&self) -> f64 {
        self.inner.mechanism.epsilon()
    }

    /// Per-user-type variance contributions `T_u` (Theorem 3.4).
    pub fn variance_profile(&self) -> &[f64] {
        &self.inner.profile
    }

    /// Users needed to reach normalized variance `alpha` on this
    /// workload (Corollary 5.4) — known *before* collecting anything.
    pub fn sample_complexity(&self, alpha: f64) -> f64 {
        ldp_core::complexity::sample_complexity(
            &self.inner.profile,
            self.inner.workload.num_queries(),
            alpha,
        )
    }

    /// Worst-case total workload variance after `n_users` reports
    /// (Corollary 3.5).
    pub fn worst_case_variance(&self, n_users: f64) -> f64 {
        variance::worst_case_variance(&self.inner.profile, n_users)
    }
}

/// Resumable streaming ingestion over a [`Deployment`]: the server-side
/// loop of a long-running collection service. Reports arrive in batches;
/// [`StreamIngestor::checkpoint`] serializes the exact aggregation state
/// (integer counts — no float drift) at any batch boundary, and
/// [`Deployment::resume`] picks the stream back up after a restart.
///
/// **Determinism contract:** interrupt at any batch boundary, resume
/// from the checkpoint, ingest the remaining batches — every estimate is
/// byte-equal to the uninterrupted run, at any `LDP_THREADS` setting.
///
/// ```
/// use ldp::prelude::*;
///
/// let deployment = Pipeline::for_workload(Histogram::new(4))
///     .epsilon(1.0)
///     .baseline(Baseline::RandomizedResponse)
///     .unwrap();
///
/// let mut stream = deployment.stream();
/// stream.ingest_batch(&[0, 1, 2, 3]).unwrap();
/// let snapshot = stream.checkpoint(); // persist these bytes anywhere
///
/// // …process restarts…
/// let mut resumed = deployment.resume(&snapshot).unwrap();
/// resumed.ingest_batch(&[2, 2]).unwrap();
/// assert_eq!(resumed.reports(), 6);
/// assert_eq!(resumed.epoch(), 1);
/// ```
pub struct StreamIngestor {
    deployment: Deployment,
    aggregator: Aggregator,
    epoch: u64,
    batches: u64,
}

impl std::fmt::Debug for StreamIngestor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamIngestor")
            .field("epoch", &self.epoch)
            .field("batches", &self.batches)
            .field("reports", &self.aggregator.reports())
            .finish_non_exhaustive()
    }
}

impl StreamIngestor {
    /// Ingests one batch of reports atomically (the batch validates
    /// before any of it counts, exactly like
    /// [`Aggregator::ingest_batch`]).
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] naming the first invalid report;
    /// the stream is unchanged and the batch is not counted — it can be
    /// repaired and re-submitted.
    pub fn ingest_batch(&mut self, reports: &[usize]) -> Result<(), LdpError> {
        self.aggregator.ingest_batch(reports)?;
        self.batches += 1;
        Ok(())
    }

    /// Serializes the exact current state into checkpoint bytes and
    /// advances the epoch. Non-destructive: ingestion continues
    /// afterwards. The bytes carry a fingerprint binding them to this
    /// deployment, a format version, and a checksum — see `ldp-store`'s
    /// codec docs.
    pub fn checkpoint(&mut self) -> Vec<u8> {
        self.epoch += 1;
        encode_checkpoint(&IngestCheckpoint {
            epoch: self.epoch,
            batches: self.batches,
            counts: self.aggregator.counts().to_vec(),
            binding: self.deployment.binding(),
        })
    }

    /// The current estimate — readable mid-stream, collection continues.
    pub fn estimate(&self) -> Estimate {
        self.deployment.estimate(&self.aggregator)
    }

    /// The deployment this stream collects for.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The underlying aggregator (e.g. for merging side shards).
    pub fn aggregator(&self) -> &Aggregator {
        &self.aggregator
    }

    /// Checkpoint generation: how many checkpoints this lineage has
    /// written (survives resume).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Batches ingested across the stream's whole lineage.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Reports collected across the stream's whole lineage.
    pub fn reports(&self) -> u64 {
        self.aggregator.reports()
    }
}

/// The terminal product of a pipeline: the unbiased data-vector estimate
/// `x̂` together with everything an analyst reads off it — workload
/// answers `Wx̂`, analytic variance and sample complexity at the observed
/// report count, and WNNLS consistency refinement.
#[derive(Clone)]
pub struct Estimate {
    inner: Arc<DeploymentInner>,
    xhat: Vec<f64>,
    reports: u64,
}

impl Estimate {
    /// The estimated data vector `x̂` (length `n`).
    pub fn data_vector(&self) -> &[f64] {
        &self.xhat
    }

    /// Consumes the estimate, returning `x̂`.
    pub fn into_data_vector(self) -> Vec<f64> {
        self.xhat
    }

    /// The workload answers `Wx̂` (length `p`), evaluated implicitly —
    /// workloads with millions of queries never materialize `W`.
    pub fn answers(&self) -> Vec<f64> {
        self.inner.workload.evaluate(&self.xhat)
    }

    /// Number of reports this estimate is based on.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Worst-case total workload variance at this report count
    /// (Corollary 3.5) — the analytic error bar, no simulation needed.
    pub fn worst_case_variance(&self) -> f64 {
        variance::worst_case_variance(&self.inner.profile, self.reports as f64)
    }

    /// Worst-case per-query standard deviation at this report count: the
    /// interpretable "±so-many users" error bar on each answer.
    pub fn per_query_stddev(&self) -> f64 {
        (self.worst_case_variance() / self.inner.workload.num_queries() as f64).sqrt()
    }

    /// Users needed for normalized variance `alpha` (Corollary 5.4) —
    /// compare with [`Estimate::reports`] to see how far along the
    /// collection is.
    pub fn sample_complexity(&self, alpha: f64) -> f64 {
        ldp_core::complexity::sample_complexity(
            &self.inner.profile,
            self.inner.workload.num_queries(),
            alpha,
        )
    }

    /// WNNLS consistency refinement (Appendix A): the closest non-negative
    /// data vector in workload distance. Answers derived from the result
    /// come from an actual population, and in the high-privacy regime
    /// typically have substantially lower error (Figure 4).
    pub fn consistent(&self) -> Estimate {
        self.consistent_with(&WnnlsOptions::default())
    }

    /// [`Estimate::consistent`] with explicit solver options.
    pub fn consistent_with(&self, options: &WnnlsOptions) -> Estimate {
        Estimate {
            inner: Arc::clone(&self.inner),
            xhat: wnnls(&self.inner.gram, &self.xhat, options),
            reports: self.reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::LdpMechanism;
    use ldp_linalg::Matrix;
    use ldp_workloads::{Histogram, Prefix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn baseline_deployment_round_trip() {
        let n = 8;
        let deployment = Pipeline::for_workload(Histogram::new(n))
            .epsilon(2.0)
            .baseline(Baseline::RandomizedResponse)
            .unwrap();
        assert!((deployment.epsilon() - 2.0).abs() < 1e-12);

        let client = deployment.client();
        let mut agg = deployment.aggregator();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            agg.ingest(client.respond(3, &mut rng)).unwrap();
        }
        let estimate = deployment.estimate(&agg);
        assert_eq!(estimate.reports(), 500);
        // Unbiased estimate should put most mass on type 3 at eps=2.
        let xhat = estimate.data_vector();
        let argmax = (0..n)
            .max_by(|&a, &b| xhat[a].partial_cmp(&xhat[b]).unwrap())
            .unwrap();
        assert_eq!(argmax, 3);
        // Consistent refinement is non-negative and answers have length p.
        let consistent = estimate.consistent();
        assert!(consistent.data_vector().iter().all(|&v| v >= 0.0));
        assert_eq!(consistent.answers().len(), n);
        assert!(estimate.worst_case_variance().is_finite());
        assert!(estimate.per_query_stddev() > 0.0);
        assert!(estimate.sample_complexity(0.01).is_finite());
    }

    #[test]
    fn sharded_merge_matches_sequential_bit_for_bit() {
        let deployment = Pipeline::for_workload(Prefix::new(8))
            .epsilon(1.0)
            .baseline(Baseline::HadamardResponse)
            .unwrap();
        let client = deployment.client();
        let mut rng = StdRng::seed_from_u64(5);
        let reports: Vec<usize> = (0..2000).map(|i| client.respond(i % 8, &mut rng)).collect();

        let mut sequential = deployment.aggregator();
        sequential.ingest_batch(&reports).unwrap();

        let mut shards = deployment.shards(7);
        for (i, &r) in reports.iter().enumerate() {
            shards[i % 7].ingest(r).unwrap();
        }
        let merged = deployment.merge(shards).unwrap();

        assert_eq!(merged.counts(), sequential.counts());
        assert_eq!(
            deployment.estimate(&merged).data_vector(),
            deployment.estimate(&sequential).data_vector()
        );
    }

    #[test]
    fn deploy_accepts_external_mechanism_and_validates_domain() {
        let gram = Histogram::new(6).gram();
        let mech = ldp_mechanisms::randomized_response(6, 1.0, &gram).unwrap();
        let deployment = Pipeline::for_workload(Histogram::new(6))
            .deploy(mech)
            .unwrap();
        assert_eq!(deployment.mechanism().domain_size(), 6);

        let mismatched = ldp_mechanisms::randomized_response(5, 1.0, &Matrix::identity(5)).unwrap();
        let err = Pipeline::for_workload(Histogram::new(6)).deploy(mismatched);
        assert!(matches!(err, Err(LdpError::DimensionMismatch { .. })));
    }

    #[test]
    fn every_terminal_rejects_bad_epsilon_uniformly() {
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let opt = Pipeline::for_workload(Histogram::new(4))
                .epsilon(eps)
                .optimized(&OptimizerConfig::quick(1));
            assert!(
                matches!(opt, Err(LdpError::InvalidEpsilon(_))),
                "optimized at eps {eps}"
            );
            let base = Pipeline::for_workload(Histogram::new(4))
                .epsilon(eps)
                .baseline(Baseline::RandomizedResponse);
            assert!(
                matches!(base, Err(LdpError::InvalidEpsilon(_))),
                "baseline at eps {eps}"
            );
            let e = 1.0_f64.exp();
            let z = e + 3.0;
            let q = Matrix::from_fn(4, 4, |o, u| if o == u { e / z } else { 1.0 / z });
            let strat = Pipeline::for_workload(Histogram::new(4))
                .epsilon(eps)
                .strategy(StrategyMatrix::new(q).unwrap());
            assert!(
                matches!(strat, Err(LdpError::InvalidEpsilon(_))),
                "strategy at eps {eps}"
            );
        }
    }

    #[test]
    fn stream_checkpoint_resume_round_trip() {
        let deployment = Pipeline::for_workload(Prefix::new(8))
            .epsilon(1.0)
            .baseline(Baseline::RandomizedResponse)
            .unwrap();
        let mut stream = deployment.stream();
        stream.ingest_batch(&[0, 1, 2, 3]).unwrap();
        stream.ingest_batch(&[4, 5]).unwrap();
        let bytes = stream.checkpoint();
        assert_eq!(stream.epoch(), 1);

        let mut resumed = deployment.resume(&bytes).unwrap();
        assert_eq!(resumed.epoch(), 1);
        assert_eq!(resumed.batches(), 2);
        assert_eq!(resumed.reports(), 6);
        resumed.ingest_batch(&[6, 7]).unwrap();

        let mut uninterrupted = deployment.stream();
        for batch in [&[0usize, 1, 2, 3][..], &[4, 5], &[6, 7]] {
            uninterrupted.ingest_batch(batch).unwrap();
        }
        assert_eq!(
            resumed.aggregator().counts(),
            uninterrupted.aggregator().counts()
        );
        assert_eq!(
            resumed.estimate().data_vector(),
            uninterrupted.estimate().data_vector()
        );
    }

    #[test]
    fn resume_rejects_foreign_deployment_checkpoint() {
        let a = Pipeline::for_workload(Prefix::new(8))
            .epsilon(1.0)
            .baseline(Baseline::RandomizedResponse)
            .unwrap();
        let b = Pipeline::for_workload(Prefix::new(8))
            .epsilon(2.0) // different budget → different binding
            .baseline(Baseline::RandomizedResponse)
            .unwrap();
        let mut stream = a.stream();
        stream.ingest_batch(&[0, 1]).unwrap();
        let bytes = stream.checkpoint();
        assert!(a.resume(&bytes).is_ok());
        assert!(matches!(
            b.resume(&bytes).unwrap_err(),
            ldp_store::StoreError::Malformed(_)
        ));
        // Corrupted bytes are a codec error, not a panic.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        assert!(a.resume(&corrupt).is_err());
    }

    #[test]
    fn simulate_matches_run_for_same_seed() {
        let deployment = Pipeline::for_workload(Prefix::new(8))
            .epsilon(1.0)
            .baseline(Baseline::RandomizedResponse)
            .unwrap();
        let gram = Prefix::new(8).gram();
        let manual = ldp_mechanisms::randomized_response(8, 1.0, &gram).unwrap();
        let data = DataVector::from_counts(vec![40.0, 10.0, 0.0, 5.0, 5.0, 20.0, 0.0, 20.0]);
        let a = deployment.simulate(&data, &mut StdRng::seed_from_u64(11));
        let b = manual.run(&data, &mut StdRng::seed_from_u64(11));
        assert_eq!(a.data_vector(), b.as_slice());
        assert_eq!(a.reports(), 100);
    }
}
